// Attack incidents: grouping per-minute detections into attack units.
//
// "We group multiple attack windows as a single attack where the last attack
// interval is followed by T inactive windows" (§2.2), with the per-type T of
// Table 1. The incident is the unit every characterization in §4-§6 counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netflow/flow_record.h"
#include "netflow/window_aggregator.h"
#include "sim/attack_type.h"
#include "util/time.h"

namespace dm::detect {

/// One detected attack on/from one VIP.
struct AttackIncident {
  // dmlint: checkpointed
  netflow::IPv4 vip;
  netflow::Direction direction = netflow::Direction::kInbound;
  sim::AttackType type = sim::AttackType::kSynFlood;

  util::Minute start = 0;  ///< first detected minute
  util::Minute end = 0;    ///< last detected minute + 1
  std::uint32_t active_minutes = 0;  ///< minutes actually flagged

  std::uint64_t total_sampled_packets = 0;
  std::uint64_t peak_sampled_ppm = 0;     ///< max sampled packets in a minute
  std::uint32_t peak_unique_remotes = 0;  ///< max distinct remotes in a minute

  /// Minutes from start until the per-minute rate first reached 90% of the
  /// incident's peak (§5.2 ramp-up; meaningful for volume attacks).
  util::Minute ramp_up_minutes = 0;

  [[nodiscard]] util::Minute duration() const noexcept { return end - start; }

  /// Estimated true peak rate in packets/second (sampled ppm scaled by the
  /// sampling denominator over 60 s).
  [[nodiscard]] double estimated_peak_pps(std::uint32_t sampling) const noexcept {
    return static_cast<double>(peak_sampled_ppm) *
           static_cast<double>(sampling) / 60.0;
  }
};

/// One flagged minute, as produced by the detection pipeline.
struct MinuteDetection {
  netflow::IPv4 vip;
  netflow::Direction direction = netflow::Direction::kInbound;
  sim::AttackType type = sim::AttackType::kSynFlood;
  util::Minute minute = 0;
  std::uint64_t sampled_packets = 0;
  std::uint32_t unique_remotes = 0;
};

/// Per-type inactive timeouts (minutes). Defaults to Table 1; the
/// TimeoutSelector can derive them from data instead.
struct TimeoutTable {
  std::array<util::Minute, sim::kAttackTypeCount> timeout;

  /// Table 1's published values.
  [[nodiscard]] static TimeoutTable paper();

  [[nodiscard]] util::Minute of(sim::AttackType t) const noexcept {
    return timeout[sim::index_of(t)];
  }
};

/// Groups minute detections into incidents. Input order is irrelevant; the
/// builder sorts internally by (vip, direction, type, minute).
[[nodiscard]] std::vector<AttackIncident> build_incidents(
    std::vector<MinuteDetection> detections, const TimeoutTable& timeouts);

/// The inactive-time gap samples (minutes) between consecutive detected
/// minutes of the same (VIP, direction, type) — the raw material of Fig 1
/// and of timeout selection.
[[nodiscard]] std::vector<double> inactive_gaps(
    std::span<const MinuteDetection> detections, sim::AttackType type,
    netflow::Direction direction);

}  // namespace dm::detect
