// Data-driven inactive-timeout selection (paper §2.2 / Fig 1).
//
// "We select the T value by generating a linear regression line between each
// point and the 99 percentile of each attack distribution curve and checking
// that the average R-squared value for regression models of inbound and
// outbound curves is above 85%."
//
// For each attack type the selector builds the inactive-gap CDFs (inbound
// and outbound), then scans candidate T values from small to large: for each
// T it fits a line over the CDF points in [T, p99] for both directions and
// returns the smallest T whose average R² clears the bar — i.e. beyond T the
// tail is close to linear and further merging would not change structure.
#pragma once

#include <span>
#include <vector>

#include "detect/incident.h"
#include "util/regression.h"

namespace dm::detect {

/// Diagnostics of one type's selection (also feeds the Fig 1/Table 1 bench).
struct TimeoutChoice {
  sim::AttackType type = sim::AttackType::kSynFlood;
  util::Minute timeout = 0;
  double avg_r_squared = 0.0;
  std::size_t inbound_gaps = 0;
  std::size_t outbound_gaps = 0;
};

/// Selection parameters.
struct TimeoutSelectorConfig {
  double r_squared_bar = 0.85;
  /// Candidate timeouts, ascending (the Table 1 value set plus neighbors).
  std::vector<util::Minute> candidates{1, 5, 10, 30, 60, 120, 240};
  /// Fall back to this when no candidate clears the bar or data is scarce.
  util::Minute fallback = 60;
  /// Minimum gap samples per direction to attempt a fit.
  std::size_t min_samples = 12;
};

/// Computes per-type timeouts from detected minutes.
[[nodiscard]] std::vector<TimeoutChoice> select_timeouts(
    std::span<const MinuteDetection> detections,
    const TimeoutSelectorConfig& config = {});

/// Converts choices into the table the incident builder consumes. Types
/// absent from `choices` keep the Table 1 defaults.
[[nodiscard]] TimeoutTable to_table(std::span<const TimeoutChoice> choices);

/// One direction's fit at one candidate T (exposed for tests).
[[nodiscard]] util::LinearFit fit_gap_tail(std::span<const double> sorted_gaps,
                                           util::Minute candidate);

}  // namespace dm::detect
