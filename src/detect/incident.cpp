#include "detect/incident.h"

#include <algorithm>
#include <tuple>

namespace dm::detect {

using netflow::Direction;
using sim::AttackType;

TimeoutTable TimeoutTable::paper() {
  TimeoutTable t{};
  for (AttackType type : sim::kAllAttackTypes) {
    t.timeout[sim::index_of(type)] = sim::inactive_timeout(type);
  }
  return t;
}

namespace {

auto detection_key(const MinuteDetection& d) {
  return std::make_tuple(d.vip.value(), static_cast<int>(d.direction),
                         static_cast<int>(d.type), d.minute);
}

/// Finalizes an incident from its member minutes [first, last).
AttackIncident finalize(std::span<const MinuteDetection> minutes) {
  AttackIncident inc;
  const MinuteDetection& head = minutes.front();
  inc.vip = head.vip;
  inc.direction = head.direction;
  inc.type = head.type;
  inc.start = head.minute;
  inc.end = minutes.back().minute + 1;
  inc.active_minutes = static_cast<std::uint32_t>(minutes.size());
  for (const MinuteDetection& d : minutes) {
    inc.total_sampled_packets += d.sampled_packets;
    inc.peak_sampled_ppm = std::max(inc.peak_sampled_ppm, d.sampled_packets);
    inc.peak_unique_remotes = std::max(inc.peak_unique_remotes, d.unique_remotes);
  }
  const auto ninety = static_cast<std::uint64_t>(
      0.9 * static_cast<double>(inc.peak_sampled_ppm));
  for (const MinuteDetection& d : minutes) {
    if (d.sampled_packets >= ninety) {
      inc.ramp_up_minutes = d.minute - inc.start;
      break;
    }
  }
  return inc;
}

}  // namespace

std::vector<AttackIncident> build_incidents(std::vector<MinuteDetection> detections,
                                            const TimeoutTable& timeouts) {
  std::sort(detections.begin(), detections.end(),
            [](const MinuteDetection& a, const MinuteDetection& b) {
              return detection_key(a) < detection_key(b);
            });

  std::vector<AttackIncident> incidents;
  std::size_t group_start = 0;
  for (std::size_t i = 0; i < detections.size(); ++i) {
    const bool last = i + 1 == detections.size();
    bool split = last;
    if (!last) {
      const MinuteDetection& cur = detections[i];
      const MinuteDetection& next = detections[i + 1];
      const bool same_series = cur.vip == next.vip &&
                               cur.direction == next.direction &&
                               cur.type == next.type;
      // Gap counts the silent minutes strictly between the two detections.
      split = !same_series ||
              (next.minute - cur.minute - 1) > timeouts.of(cur.type);
    }
    if (split) {
      incidents.push_back(finalize(
          std::span<const MinuteDetection>(detections).subspan(
              group_start, i + 1 - group_start)));
      group_start = i + 1;
    }
  }
  return incidents;
}

std::vector<double> inactive_gaps(std::span<const MinuteDetection> detections,
                                  AttackType type, Direction direction) {
  std::vector<MinuteDetection> filtered;
  for (const MinuteDetection& d : detections) {
    if (d.type == type && d.direction == direction) filtered.push_back(d);
  }
  std::sort(filtered.begin(), filtered.end(),
            [](const MinuteDetection& a, const MinuteDetection& b) {
              return detection_key(a) < detection_key(b);
            });
  std::vector<double> gaps;
  for (std::size_t i = 1; i < filtered.size(); ++i) {
    const MinuteDetection& prev = filtered[i - 1];
    const MinuteDetection& cur = filtered[i];
    if (prev.vip == cur.vip && prev.direction == cur.direction &&
        cur.minute > prev.minute + 1) {
      gaps.push_back(static_cast<double>(cur.minute - prev.minute - 1));
    }
  }
  return gaps;
}

}  // namespace dm::detect
