// Online (streaming) detection front-end.
//
// The paper ran its methodology offline over stored NetFlow, noting that it
// "signaled the attack based on the NetFlow data for these instances within
// a minute" (§3.2) — i.e. the approach is deployable online. StreamMonitor
// is that deployment shape: raw flow records are ingested as they arrive,
// one-minute windows are closed as time advances, per-series detectors run
// incrementally, and completed incidents are delivered through callbacks.
//
// Degraded-feed contract: records may arrive in any order within
// StreamConfig::reorder_lag minutes of the newest minute seen — a window
// commits only once the watermark (newest minute minus the lag) passes it,
// replacing the old "minute M commits everything < M" hard rule. Records
// older than the watermark count as `late`; exact duplicates within open
// windows can be suppressed; malformed records are quarantined; declared
// collector outages (note_outage) are excluded from detector baselines so
// a feed gap is not mistaken for a traffic collapse. checkpoint()/restore()
// serialize the complete monitor state through the trace format's
// varint/CRC framing, so a crashed monitor resumes byte-identically on an
// in-order feed.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <unordered_set>
#include <vector>

#include "detect/detectors.h"
#include "detect/incident.h"
#include "netflow/window_aggregator.h"
#include "util/error.h"

namespace dm::detect {

/// Structured failure from StreamMonitor::restore. Derives from FormatError
/// so existing catch sites keep working, but carries a machine-readable
/// Kind so supervisors can distinguish "not a checkpoint at all" from "a
/// checkpoint this build cannot read" from "a damaged checkpoint" when
/// deciding which generation to fall back to. restore() guarantees the
/// monitor is untouched whenever this is thrown.
class CheckpointError : public FormatError {
 public:
  enum class Kind {
    kTruncated,         ///< stream ended inside the frame
    kBadMagic,          ///< not a DMCK checkpoint
    kBadVersion,        ///< DMCK, but a version this build does not read
    kOversized,         ///< frame claims an implausibly large payload
    kCrcMismatch,       ///< payload bytes fail the frame CRC
    kMalformedPayload,  ///< CRC passed but the payload does not decode
    kTrailingBytes,     ///< payload decoded with bytes left over
  };

  CheckpointError(Kind kind, const std::string& what)
      : FormatError(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Degraded-feed knobs. Defaults reproduce the paper-strict behavior
/// (no reorder tolerance, no duplicate suppression).
struct StreamConfig {
  /// Minutes of reorder tolerance: a record for minute M commits windows
  /// with minute < M - reorder_lag, so records up to `reorder_lag` minutes
  /// behind the newest are still accepted. 0 = commit immediately.
  util::Minute reorder_lag = 0;
  /// Drop byte-identical duplicates of records already ingested into a
  /// still-open minute (collectors re-emit on retry storms).
  bool suppress_duplicates = false;
};

class StreamMonitor {
 public:
  using AlertCallback = std::function<void(const MinuteDetection&)>;
  using IncidentCallback = std::function<void(const AttackIncident&)>;

  /// `cloud_space` orients records; `blacklist` (optional, not owned, must
  /// outlive the monitor) enables TDS detection. `on_alert` fires per
  /// flagged minute as soon as its window closes; `on_incident` fires when
  /// an incident's inactive timeout expires (or at finish()).
  StreamMonitor(netflow::PrefixSet cloud_space,
                const netflow::PrefixSet* blacklist = nullptr,
                DetectionConfig config = {},
                TimeoutTable timeouts = TimeoutTable::paper(),
                AlertCallback on_alert = nullptr,
                IncidentCallback on_incident = nullptr,
                StreamConfig stream = {});

  /// Feeds one record. Malformed records (zero sampled packets) are
  /// quarantined; records at or before the commit watermark count as late;
  /// optional duplicate suppression and orientation filtering follow (see
  /// the split counters below).
  void ingest(const netflow::FlowRecord& record);

  /// Closes every window with minute < `minute` — call periodically with
  /// wall-clock time when the feed is idle, so quiet periods still time
  /// incidents out. Ignores the reorder lag: the caller is asserting that
  /// time has genuinely advanced.
  void advance_to(util::Minute minute);

  /// Declares [from, to) as a collector outage: those minutes are excluded
  /// from detector baselines (no zero-decay, no warm-up credit), so the
  /// EWMA volume detectors do not treat the gap as a rate collapse and
  /// then alarm on the post-outage recovery.
  void note_outage(util::Minute from, util::Minute to);

  /// Flushes all open windows and incidents.
  void finish();

  /// Serializes the complete monitor state (open windows, detector
  /// baselines, pending incidents, counters, outages, dedup sets) through
  /// the varint/CRC framing. Deterministic: equal states produce equal
  /// bytes.
  void checkpoint(std::ostream& out) const;

  /// Restores state captured by checkpoint() into this monitor, replacing
  /// its current state. The monitor must have been constructed with the
  /// same DetectionConfig/TimeoutTable/StreamConfig (those are not
  /// serialized). Throws CheckpointError (a FormatError) on damaged input —
  /// empty streams, truncated frames, CRC mismatches, and CRC-valid but
  /// undecodable payloads included — and leaves the monitor's state exactly
  /// as it was before the call in every failure case: the frame is read and
  /// CRC-validated in full, decoded into fresh state, and only then swapped
  /// in.
  void restore(std::istream& in);

  // Counters.
  [[nodiscard]] std::uint64_t records_ingested() const noexcept {
    return records_ingested_;
  }
  /// Every record ingest() refused, whatever the reason: the sum of the
  /// late, unclassifiable, duplicate, and quarantined counters.
  // dmlint: ledger-total(stream-drops)
  [[nodiscard]] std::uint64_t records_dropped() const noexcept {
    return records_late_ + records_unclassifiable_ + records_duplicate_ +
           records_quarantined_;
  }
  [[nodiscard]] std::uint64_t records_late() const noexcept {
    return records_late_;  ///< arrived at or before the commit watermark
  }
  [[nodiscard]] std::uint64_t records_unclassifiable() const noexcept {
    return records_unclassifiable_;  ///< matched neither/both cloud prefixes
  }
  [[nodiscard]] std::uint64_t records_duplicate() const noexcept {
    return records_duplicate_;  ///< suppressed as exact duplicates
  }
  [[nodiscard]] std::uint64_t records_quarantined() const noexcept {
    return records_quarantined_;  ///< malformed contents (zero packets)
  }
  [[nodiscard]] std::uint64_t windows_closed() const noexcept {
    return windows_closed_;
  }
  [[nodiscard]] std::uint64_t alerts() const noexcept { return alerts_; }
  [[nodiscard]] std::uint64_t incidents() const noexcept { return incidents_; }

  // State-size gauges — what a supervisor's admission controller consults
  // when enforcing per-tenant memory budgets.
  /// Open (minute, series) windows currently under accumulation.
  [[nodiscard]] std::size_t open_window_count() const noexcept;
  /// Per-series detector banks retained (grows with distinct VIPs seen).
  [[nodiscard]] std::size_t series_count() const noexcept {
    return detectors_.size();
  }
  /// Rough resident footprint of the monitor state in bytes: container
  /// entries times their element sizes plus the per-window remote-IP sets.
  /// A budget gauge (stable across runs), not an allocator measurement.
  [[nodiscard]] std::uint64_t approx_state_bytes() const noexcept;

 private:
  struct SeriesKey {
    std::uint32_t vip = 0;
    netflow::Direction direction = netflow::Direction::kInbound;
    friend bool operator<(const SeriesKey& a, const SeriesKey& b) {
      if (a.vip != b.vip) return a.vip < b.vip;
      return static_cast<int>(a.direction) < static_cast<int>(b.direction);
    }
  };

  /// An open one-minute window under accumulation.
  struct OpenWindow {
    // dmlint: checkpointed
    netflow::VipMinuteStats stats;
    std::unordered_set<std::uint32_t> remotes;
    std::unordered_set<std::uint32_t> admin_remotes;
    std::unordered_set<std::uint32_t> smtp_remotes;
    std::unordered_set<std::uint32_t> blacklist_remotes;
  };

  /// An incident accumulating detected minutes.
  struct OpenIncident {
    // dmlint: checkpointed
    AttackIncident incident;
    bool active = false;
  };

  /// A per-series detector bank plus the last minute it observed — needed
  /// to intersect declared outages with the series' silent gap.
  struct SeriesState {
    // dmlint: checkpointed
    SeriesDetector detector;
    util::Minute last_minute = -1;
    explicit SeriesState(const DetectionConfig& config) noexcept
        : detector(config) {}
  };

  void commit_to(util::Minute minute);
  void close_minute(util::Minute minute);
  void feed_window(const SeriesKey& key, const OpenWindow& window);
  void feed_detection(const MinuteDetection& detection);
  void expire_incidents(util::Minute now);
  [[nodiscard]] std::size_t outage_overlap(util::Minute from,
                                           util::Minute to) const noexcept;

  netflow::PrefixSet cloud_space_;
  const netflow::PrefixSet* blacklist_;
  DetectionConfig config_;
  TimeoutTable timeouts_;
  AlertCallback on_alert_;
  IncidentCallback on_incident_;
  StreamConfig stream_;

  // minute -> series -> open window; minutes close in order.
  std::map<util::Minute, std::map<SeriesKey, OpenWindow>> open_minutes_;
  std::map<SeriesKey, SeriesState> detectors_;
  std::map<std::tuple<std::uint32_t, int, int>, OpenIncident> open_incidents_;
  util::Minute watermark_ = -1;  ///< all minutes <= watermark are closed
  util::Minute max_seen_ = -1;   ///< newest minute ingested or advanced to
  /// Declared collector outages [from, to), sorted and non-overlapping.
  std::vector<std::pair<util::Minute, util::Minute>> outages_;
  /// Per-open-minute hashes of ingested records (duplicate suppression).
  std::map<util::Minute, std::unordered_set<std::uint64_t>> seen_;

  std::uint64_t records_ingested_ = 0;
  // dmlint: ledger(stream-drops)
  std::uint64_t records_late_ = 0;
  // dmlint: ledger(stream-drops)
  std::uint64_t records_unclassifiable_ = 0;
  // dmlint: ledger(stream-drops)
  std::uint64_t records_duplicate_ = 0;
  // dmlint: ledger(stream-drops)
  std::uint64_t records_quarantined_ = 0;
  std::uint64_t windows_closed_ = 0;
  std::uint64_t alerts_ = 0;
  std::uint64_t incidents_ = 0;
};

}  // namespace dm::detect
