// Online (streaming) detection front-end.
//
// The paper ran its methodology offline over stored NetFlow, noting that it
// "signaled the attack based on the NetFlow data for these instances within
// a minute" (§3.2) — i.e. the approach is deployable online. StreamMonitor
// is that deployment shape: raw flow records are ingested as they arrive,
// one-minute windows are closed as time advances, per-series detectors run
// incrementally, and completed incidents are delivered through callbacks.
//
// Contract: records may arrive in any order within a minute, but a record
// for minute M commits every window of minutes < M (collectors emit in
// near-order; call ingest with a small reorder buffer upstream if yours
// does not).
#pragma once

#include <functional>
#include <map>
#include <unordered_set>

#include "detect/detectors.h"
#include "detect/incident.h"
#include "netflow/window_aggregator.h"

namespace dm::detect {

class StreamMonitor {
 public:
  using AlertCallback = std::function<void(const MinuteDetection&)>;
  using IncidentCallback = std::function<void(const AttackIncident&)>;

  /// `cloud_space` orients records; `blacklist` (optional, not owned, must
  /// outlive the monitor) enables TDS detection. `on_alert` fires per
  /// flagged minute as soon as its window closes; `on_incident` fires when
  /// an incident's inactive timeout expires (or at finish()).
  StreamMonitor(netflow::PrefixSet cloud_space,
                const netflow::PrefixSet* blacklist = nullptr,
                DetectionConfig config = {},
                TimeoutTable timeouts = TimeoutTable::paper(),
                AlertCallback on_alert = nullptr,
                IncidentCallback on_incident = nullptr);

  /// Feeds one record. Records older than an already-closed minute are
  /// counted as late drops (real collectors do the same).
  void ingest(const netflow::FlowRecord& record);

  /// Closes every window with minute < `minute` — call periodically with
  /// wall-clock time when the feed is idle, so quiet periods still time
  /// incidents out.
  void advance_to(util::Minute minute);

  /// Flushes all open windows and incidents.
  void finish();

  // Counters.
  [[nodiscard]] std::uint64_t records_ingested() const noexcept {
    return records_ingested_;
  }
  [[nodiscard]] std::uint64_t records_dropped() const noexcept {
    return records_dropped_;  ///< unclassifiable or late
  }
  [[nodiscard]] std::uint64_t windows_closed() const noexcept {
    return windows_closed_;
  }
  [[nodiscard]] std::uint64_t alerts() const noexcept { return alerts_; }
  [[nodiscard]] std::uint64_t incidents() const noexcept { return incidents_; }

 private:
  struct SeriesKey {
    std::uint32_t vip = 0;
    netflow::Direction direction = netflow::Direction::kInbound;
    friend bool operator<(const SeriesKey& a, const SeriesKey& b) {
      if (a.vip != b.vip) return a.vip < b.vip;
      return static_cast<int>(a.direction) < static_cast<int>(b.direction);
    }
  };

  /// An open one-minute window under accumulation.
  struct OpenWindow {
    netflow::VipMinuteStats stats;
    std::unordered_set<std::uint32_t> remotes;
    std::unordered_set<std::uint32_t> admin_remotes;
    std::unordered_set<std::uint32_t> smtp_remotes;
    std::unordered_set<std::uint32_t> blacklist_remotes;
  };

  /// An incident accumulating detected minutes.
  struct OpenIncident {
    AttackIncident incident;
    bool active = false;
  };

  void close_minute(util::Minute minute);
  void feed_window(const SeriesKey& key, const OpenWindow& window);
  void feed_detection(const MinuteDetection& detection);
  void expire_incidents(util::Minute now);

  netflow::PrefixSet cloud_space_;
  const netflow::PrefixSet* blacklist_;
  DetectionConfig config_;
  TimeoutTable timeouts_;
  AlertCallback on_alert_;
  IncidentCallback on_incident_;

  // minute -> series -> open window; minutes close in order.
  std::map<util::Minute, std::map<SeriesKey, OpenWindow>> open_minutes_;
  std::map<SeriesKey, SeriesDetector> detectors_;
  std::map<std::tuple<std::uint32_t, int, int>, OpenIncident> open_incidents_;
  util::Minute watermark_ = -1;  ///< all minutes <= watermark are closed

  std::uint64_t records_ingested_ = 0;
  std::uint64_t records_dropped_ = 0;
  std::uint64_t windows_closed_ = 0;
  std::uint64_t alerts_ = 0;
  std::uint64_t incidents_ = 0;
};

}  // namespace dm::detect
