// Cross-incident correlation (paper §4.2-§4.3):
//  - multi-vector attacks: different attack types hitting (or leaving) the
//    same VIP with start times within five minutes;
//  - multi-VIP events: same-type attacks starting on many VIPs within five
//    minutes (one attacker sweeping the cloud);
//  - compromise chains: inbound attack followed by outbound attacks from
//    the same VIP (the Fig 5 pattern).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "detect/incident.h"

namespace dm::detect {

/// The correlation window: "we identify these attacks if their start times
/// ... differ less than five minutes" (§4.2/§4.3).
inline constexpr util::Minute kCorrelationWindow = 5;

/// A set of simultaneous different-type incidents on one VIP.
struct MultiVectorEvent {
  netflow::IPv4 vip;
  netflow::Direction direction = netflow::Direction::kInbound;
  util::Minute start = 0;
  std::vector<std::uint32_t> incident_indices;  ///< into the input span
  std::uint32_t type_mask = 0;                  ///< bit per sim::AttackType

  [[nodiscard]] bool has(sim::AttackType t) const noexcept {
    return (type_mask >> sim::index_of(t)) & 1u;
  }
  [[nodiscard]] std::size_t type_count() const noexcept {
    return static_cast<std::size_t>(__builtin_popcount(type_mask));
  }
};

/// A set of simultaneous same-type incidents across VIPs.
struct MultiVipEvent {
  sim::AttackType type = sim::AttackType::kSynFlood;
  netflow::Direction direction = netflow::Direction::kInbound;
  util::Minute start = 0;
  std::uint32_t vip_count = 0;
  std::vector<std::uint32_t> incident_indices;
};

/// An inbound-then-outbound pattern on one VIP.
struct CompromiseChain {
  netflow::IPv4 vip;
  std::uint32_t inbound_incident = 0;   ///< index of the earliest inbound
  std::uint32_t outbound_incident = 0;  ///< index of the first outbound after it
  util::Minute gap_minutes = 0;         ///< outbound start - inbound start
};

/// Finds multi-vector events. Every returned event has >= 2 distinct types.
[[nodiscard]] std::vector<MultiVectorEvent> find_multi_vector(
    std::span<const AttackIncident> incidents);

/// Finds multi-VIP events. Every returned event has >= 2 distinct VIPs.
[[nodiscard]] std::vector<MultiVipEvent> find_multi_vip(
    std::span<const AttackIncident> incidents);

/// Finds VIPs whose outbound attacks start after an inbound brute-force or
/// flood on the same VIP (within `max_gap` minutes).
[[nodiscard]] std::vector<CompromiseChain> find_compromise_chains(
    std::span<const AttackIncident> incidents,
    util::Minute max_gap = 14 * util::kMinutesPerDay);

}  // namespace dm::detect
