// The end-to-end detection pipeline: windowed trace -> minute detections ->
// attack incidents.
#pragma once

#include <vector>

#include "detect/detectors.h"
#include "detect/incident.h"
#include "exec/thread_pool.h"
#include "netflow/window_aggregator.h"

namespace dm::detect {

/// Output of one pipeline run.
struct DetectionResult {
  std::vector<MinuteDetection> minutes;
  std::vector<AttackIncident> incidents;
};

/// Runs the per-series detectors over every (VIP, direction) series of the
/// trace and groups the flagged minutes into incidents.
class DetectionPipeline {
 public:
  explicit DetectionPipeline(DetectionConfig config = {},
                             TimeoutTable timeouts = TimeoutTable::paper())
      : config_(config), timeouts_(timeouts) {}

  [[nodiscard]] const DetectionConfig& config() const noexcept { return config_; }
  [[nodiscard]] const TimeoutTable& timeouts() const noexcept { return timeouts_; }

  /// Flags attack minutes without grouping (exposed for timeout selection).
  /// `pool` (may be null = serial) shards the independent (VIP, direction)
  /// series; shard results merge in series order, so the detection sequence
  /// is identical for any thread count.
  [[nodiscard]] std::vector<MinuteDetection> detect_minutes(
      const netflow::WindowedTrace& trace,
      exec::ThreadPool* pool = nullptr) const;

  /// Full run: detect (sharded over `pool`) + group (serial).
  [[nodiscard]] DetectionResult run(const netflow::WindowedTrace& trace,
                                    exec::ThreadPool* pool = nullptr) const;

 private:
  DetectionConfig config_;
  TimeoutTable timeouts_;
};

}  // namespace dm::detect
