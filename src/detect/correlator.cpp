#include "detect/correlator.h"

#include <algorithm>
#include <tuple>

namespace dm::detect {

using netflow::Direction;
using netflow::IPv4;
using sim::AttackType;

std::vector<MultiVectorEvent> find_multi_vector(
    std::span<const AttackIncident> incidents) {
  // Order incident indices by (vip, direction, start).
  std::vector<std::uint32_t> order(incidents.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto& x = incidents[a];
    const auto& y = incidents[b];
    return std::make_tuple(x.vip.value(), static_cast<int>(x.direction), x.start) <
           std::make_tuple(y.vip.value(), static_cast<int>(y.direction), y.start);
  });

  std::vector<MultiVectorEvent> events;
  std::size_t i = 0;
  while (i < order.size()) {
    const AttackIncident& head = incidents[order[i]];
    // Greedy cluster: everything on the same (vip, direction) starting
    // within the window of the cluster head.
    std::size_t j = i + 1;
    MultiVectorEvent event;
    event.vip = head.vip;
    event.direction = head.direction;
    event.start = head.start;
    event.incident_indices.push_back(order[i]);
    event.type_mask = 1u << sim::index_of(head.type);
    while (j < order.size()) {
      const AttackIncident& next = incidents[order[j]];
      if (next.vip != head.vip || next.direction != head.direction ||
          next.start - head.start >= kCorrelationWindow) {
        break;
      }
      event.incident_indices.push_back(order[j]);
      event.type_mask |= 1u << sim::index_of(next.type);
      ++j;
    }
    if (event.type_count() >= 2) events.push_back(std::move(event));
    i = j;
  }
  return events;
}

std::vector<MultiVipEvent> find_multi_vip(
    std::span<const AttackIncident> incidents) {
  std::vector<std::uint32_t> order(incidents.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto& x = incidents[a];
    const auto& y = incidents[b];
    return std::make_tuple(static_cast<int>(x.type), static_cast<int>(x.direction),
                           x.start, x.vip.value()) <
           std::make_tuple(static_cast<int>(y.type), static_cast<int>(y.direction),
                           y.start, y.vip.value());
  });

  std::vector<MultiVipEvent> events;
  std::size_t i = 0;
  while (i < order.size()) {
    const AttackIncident& head = incidents[order[i]];
    std::size_t j = i + 1;
    MultiVipEvent event;
    event.type = head.type;
    event.direction = head.direction;
    event.start = head.start;
    event.incident_indices.push_back(order[i]);
    std::vector<std::uint32_t> vips{head.vip.value()};
    while (j < order.size()) {
      const AttackIncident& next = incidents[order[j]];
      if (next.type != head.type || next.direction != head.direction ||
          next.start - head.start >= kCorrelationWindow) {
        break;
      }
      event.incident_indices.push_back(order[j]);
      vips.push_back(next.vip.value());
      ++j;
    }
    std::sort(vips.begin(), vips.end());
    vips.erase(std::unique(vips.begin(), vips.end()), vips.end());
    event.vip_count = static_cast<std::uint32_t>(vips.size());
    if (event.vip_count >= 2) events.push_back(std::move(event));
    i = j;
  }
  return events;
}

std::vector<CompromiseChain> find_compromise_chains(
    std::span<const AttackIncident> incidents, util::Minute max_gap) {
  // For each VIP: earliest inbound brute-force/flood, first outbound after it.
  struct PerVip {
    std::uint32_t inbound = 0;
    util::Minute inbound_start = -1;
    std::uint32_t outbound = 0;
    util::Minute outbound_start = -1;
  };
  // A sorted distinct-VIP directory with a parallel slot array replaces the
  // former std::map accumulator: one binary search per lookup, contiguous
  // memory, and the final scan emits in the same ascending-VIP order.
  std::vector<std::uint32_t> vips;
  vips.reserve(incidents.size());
  for (const AttackIncident& inc : incidents) vips.push_back(inc.vip.value());
  std::sort(vips.begin(), vips.end());
  vips.erase(std::unique(vips.begin(), vips.end()), vips.end());
  std::vector<PerVip> slots(vips.size());
  const auto slot_of = [&](std::uint32_t vip) -> PerVip& {
    const auto it = std::lower_bound(vips.begin(), vips.end(), vip);
    return slots[static_cast<std::size_t>(it - vips.begin())];
  };

  for (std::uint32_t i = 0; i < incidents.size(); ++i) {
    const AttackIncident& inc = incidents[i];
    if (inc.direction != Direction::kInbound) continue;
    const bool entry_vector = inc.type == AttackType::kBruteForce ||
                              sim::is_flood(inc.type) ||
                              inc.type == AttackType::kSqlInjection;
    if (!entry_vector) continue;
    PerVip& slot = slot_of(inc.vip.value());
    if (slot.inbound_start < 0 || inc.start < slot.inbound_start) {
      slot.inbound = i;
      slot.inbound_start = inc.start;
    }
  }
  for (std::uint32_t i = 0; i < incidents.size(); ++i) {
    const AttackIncident& inc = incidents[i];
    if (inc.direction != Direction::kOutbound) continue;
    PerVip& slot = slot_of(inc.vip.value());
    if (slot.inbound_start < 0) continue;
    if (inc.start <= slot.inbound_start) continue;
    if (slot.outbound_start < 0 || inc.start < slot.outbound_start) {
      slot.outbound = i;
      slot.outbound_start = inc.start;
    }
  }

  std::vector<CompromiseChain> chains;
  for (std::size_t v = 0; v < vips.size(); ++v) {
    const PerVip& slot = slots[v];
    if (slot.inbound_start < 0 || slot.outbound_start < 0) continue;
    const util::Minute gap = slot.outbound_start - slot.inbound_start;
    if (gap > max_gap) continue;
    chains.push_back(
        CompromiseChain{IPv4(vips[v]), slot.inbound, slot.outbound, gap});
  }
  return chains;
}

}  // namespace dm::detect
