#include "detect/timeout_selector.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace dm::detect {

using sim::AttackType;

util::LinearFit fit_gap_tail(std::span<const double> sorted_gaps,
                             util::Minute candidate) {
  if (sorted_gaps.empty()) return {};
  const double p99 = util::quantile_sorted(sorted_gaps, 0.99);
  const auto n = static_cast<double>(sorted_gaps.size());

  // Fig 1 plots the CDF over a log-scale x axis; the linearity check runs in
  // that space (CDF fraction vs log-minutes).
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t i = 0; i < sorted_gaps.size(); ++i) {
    const double gap = sorted_gaps[i];
    if (gap < static_cast<double>(candidate)) continue;
    if (gap > p99) break;
    xs.push_back(std::log(std::max(gap, 1.0)));
    ys.push_back(static_cast<double>(i + 1) / n);  // empirical CDF value
  }
  if (xs.size() < 2) {
    // Nothing (or a single point) beyond the candidate: the tail is trivially
    // linear — merging at this T loses no structure.
    util::LinearFit fit;
    fit.n = xs.size();
    fit.r_squared = 1.0;
    return fit;
  }
  return util::fit_linear(xs, ys);
}

std::vector<TimeoutChoice> select_timeouts(
    std::span<const MinuteDetection> detections,
    const TimeoutSelectorConfig& config) {
  std::vector<TimeoutChoice> out;
  out.reserve(sim::kAttackTypeCount);

  for (AttackType type : sim::kAllAttackTypes) {
    auto in_gaps = inactive_gaps(detections, type, netflow::Direction::kInbound);
    auto out_gaps = inactive_gaps(detections, type, netflow::Direction::kOutbound);
    std::sort(in_gaps.begin(), in_gaps.end());
    std::sort(out_gaps.begin(), out_gaps.end());

    TimeoutChoice choice;
    choice.type = type;
    choice.inbound_gaps = in_gaps.size();
    choice.outbound_gaps = out_gaps.size();

    const bool in_ok = in_gaps.size() >= config.min_samples;
    const bool out_ok = out_gaps.size() >= config.min_samples;
    if (!in_ok && !out_ok) {
      choice.timeout = config.fallback;
      out.push_back(choice);
      continue;
    }

    bool selected = false;
    for (util::Minute candidate : config.candidates) {
      double total = 0.0;
      int fits = 0;
      if (in_ok) {
        total += fit_gap_tail(in_gaps, candidate).r_squared;
        ++fits;
      }
      if (out_ok) {
        total += fit_gap_tail(out_gaps, candidate).r_squared;
        ++fits;
      }
      const double avg = fits > 0 ? total / fits : 0.0;
      if (avg >= config.r_squared_bar) {
        choice.timeout = candidate;
        choice.avg_r_squared = avg;
        selected = true;
        break;
      }
    }
    if (!selected) choice.timeout = config.fallback;
    out.push_back(choice);
  }
  return out;
}

TimeoutTable to_table(std::span<const TimeoutChoice> choices) {
  TimeoutTable table = TimeoutTable::paper();
  for (const TimeoutChoice& c : choices) {
    if (c.timeout > 0) table.timeout[sim::index_of(c.type)] = c.timeout;
  }
  return table;
}

}  // namespace dm::detect
