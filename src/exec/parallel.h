// Deterministic data-parallel skeletons over ThreadPool.
//
// Every helper here follows the same contract: work is split into chunks
// whose boundaries are a pure function of the item count, chunks may execute
// in any order on any thread, and results are merged IN CHUNK INDEX ORDER.
// Combined with order-invariant per-chunk computation (e.g. counter-based
// RNG splits keyed on item index), that makes every pipeline stage's output
// byte-identical for any thread count — the property the serial-equivalence
// test harness locks down.
//
// All helpers accept `pool == nullptr` (or an inline pool) and then run
// serially on the calling thread through the exact same code path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"

namespace dm::exec {

/// How many chunks [0, n) is split into on `pool`. Oversubscribes ~4x the
/// worker count so work-stealing can balance uneven shards.
[[nodiscard]] inline std::size_t chunk_count_for(const ThreadPool* pool,
                                                 std::size_t n) noexcept {
  if (n == 0) return 0;
  if (pool == nullptr || pool->thread_count() == 0) return 1;
  const std::size_t want = static_cast<std::size_t>(pool->thread_count()) * 4;
  return n < want ? n : want;
}

/// Runs body(begin, end, chunk_index) over a deterministic chunking of
/// [0, n). Blocks until all chunks finished; rethrows the exception of the
/// lowest-indexed failing chunk.
template <typename Body>
void parallel_for_chunks(ThreadPool* pool, std::size_t n, Body&& body) {
  const std::size_t chunks = chunk_count_for(pool, n);
  if (chunks == 0) return;
  if (chunks == 1) {
    body(std::size_t{0}, n, std::size_t{0});
    return;
  }
  TaskGroup group(*pool);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    group.run([&body, begin, end, c] { body(begin, end, c); });
  }
  group.wait();
}

/// parallel_for_chunks with an explicit chunk count (clamped to [1, n]).
/// Unlike the adaptive overload — which collapses to ONE chunk on a serial
/// pool — this always splits [0, n) into the requested number of chunks and,
/// without workers, runs them in order on the calling thread. Callers use it
/// when the chunk count bounds something besides parallelism (e.g. the
/// fused pipeline's per-shard transient memory), which must not balloon just
/// because thread_count is 1.
template <typename Body>
void parallel_for_chunks_n(ThreadPool* pool, std::size_t n, std::size_t chunks,
                           Body&& body) {
  if (n == 0) return;
  chunks = std::max<std::size_t>(1, std::min(chunks, n));
  if (pool == nullptr || pool->thread_count() == 0 || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      body(c * n / chunks, (c + 1) * n / chunks, c);
    }
    return;
  }
  TaskGroup group(*pool);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    group.run([&body, begin, end, c] { body(begin, end, c); });
  }
  group.wait();
}

/// Runs body(i) for every i in [0, n), chunked as above.
template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t n, Body&& body) {
  parallel_for_chunks(pool, n,
                      [&body](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

/// Maps each chunk [begin, end) to one T; returns the chunk results in chunk
/// index order. T must be default-constructible (the usual case: a vector
/// the chunk fills).
template <typename T, typename Map>
[[nodiscard]] std::vector<T> parallel_map_chunks(ThreadPool* pool, std::size_t n,
                                                 Map&& map) {
  const std::size_t chunks = chunk_count_for(pool, n);
  std::vector<T> results(chunks);
  parallel_for_chunks(pool, n,
                      [&](std::size_t begin, std::size_t end, std::size_t c) {
                        results[c] = map(begin, end);
                      });
  return results;
}

/// parallel_map_chunks with an explicit chunk count — see
/// parallel_for_chunks_n for when the chunk count matters beyond
/// parallelism.
template <typename T, typename Map>
[[nodiscard]] std::vector<T> parallel_map_chunks_n(ThreadPool* pool,
                                                   std::size_t n,
                                                   std::size_t chunks,
                                                   Map&& map) {
  chunks = n == 0 ? 0 : std::max<std::size_t>(1, std::min(chunks, n));
  std::vector<T> results(chunks);
  parallel_for_chunks_n(pool, n, chunks,
                        [&](std::size_t begin, std::size_t end, std::size_t c) {
                          results[c] = map(begin, end);
                        });
  return results;
}

/// Bounded-residency variant of parallel_map_chunks_n: chunks execute in
/// waves of `window`, and after each wave's barrier its results are handed
/// to consume(chunk_index, T&&) in chunk-index order before the next wave
/// starts. At most `window` chunk results are ever alive at once — the
/// memory bound the spill tier's shard merge needs — while chunk boundaries
/// and consume order are IDENTICAL to parallel_map_chunks_n followed by an
/// ordered fold, so the consumed sequence is byte-equal for any window and
/// any thread count. (A wave barrier, not a producer-blocking queue: the
/// pool pops its own queue LIFO, so low-index chunks finish last and a
/// bounded queue would either stall every worker or buffer every result.)
template <typename T, typename Map, typename Consume>
void parallel_map_waves_n(ThreadPool* pool, std::size_t n, std::size_t chunks,
                          std::size_t window, Map&& map, Consume&& consume) {
  if (n == 0) return;
  chunks = std::max<std::size_t>(1, std::min(chunks, n));
  window = std::max<std::size_t>(1, window);
  const bool serial = pool == nullptr || pool->thread_count() == 0;
  for (std::size_t wave = 0; wave < chunks; wave += window) {
    const std::size_t wave_end = std::min(chunks, wave + window);
    std::vector<T> results(wave_end - wave);
    if (serial) {
      for (std::size_t c = wave; c < wave_end; ++c) {
        results[c - wave] = map(c * n / chunks, (c + 1) * n / chunks);
      }
    } else {
      TaskGroup group(*pool);
      for (std::size_t c = wave; c < wave_end; ++c) {
        group.run([&map, &results, wave, c, n, chunks] {
          results[c - wave] = map(c * n / chunks, (c + 1) * n / chunks);
        });
      }
      group.wait();
    }
    for (std::size_t c = wave; c < wave_end; ++c) {
      consume(c, std::move(results[c - wave]));
    }
  }
}

/// Maps every index to one T; returns results in index order.
template <typename T, typename Map>
[[nodiscard]] std::vector<T> parallel_map(ThreadPool* pool, std::size_t n,
                                          Map&& map) {
  std::vector<T> results(n);
  parallel_for(pool, n, [&](std::size_t i) { results[i] = map(i); });
  return results;
}

/// Map-reduce with an ordered merge: map(i) -> T runs in parallel, then
/// reduce(acc, T&&) folds the results serially in index order — so the
/// reduction sees the same sequence no matter how many threads mapped.
template <typename Acc, typename T, typename Map, typename Reduce>
[[nodiscard]] Acc parallel_map_reduce(ThreadPool* pool, std::size_t n, Acc init,
                                      Map&& map, Reduce&& reduce) {
  std::vector<T> results = parallel_map<T>(pool, n, std::forward<Map>(map));
  Acc acc = std::move(init);
  for (T& r : results) acc = reduce(std::move(acc), std::move(r));
  return acc;
}

/// Concatenates per-chunk vectors (in chunk order) into one vector — the
/// ordered merge used by every record-emitting stage.
template <typename T>
[[nodiscard]] std::vector<T> concat(std::vector<std::vector<T>> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<T> out;
  out.reserve(total);
  for (auto& p : parts) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
  return out;
}

/// Sorts `v` by `less`. Chunks are sorted in parallel, then pairwise-merged;
/// when `less` is a strict total order (no ties) the result is the unique
/// sorted permutation, hence independent of the chunk count. Callers that
/// need byte-stable output must therefore break ties (e.g. by original
/// index) inside `less`.
template <typename T, typename Less>
void parallel_sort(ThreadPool* pool, std::vector<T>& v, Less less) {
  const std::size_t n = v.size();
  std::size_t chunks = chunk_count_for(pool, n);
  if (chunks <= 1) {
    std::sort(v.begin(), v.end(), less);
    return;
  }

  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) bounds[c] = c * n / chunks;
  parallel_for_chunks(pool, chunks,
                      [&](std::size_t cb, std::size_t ce, std::size_t) {
                        for (std::size_t c = cb; c < ce; ++c) {
                          std::sort(v.begin() + static_cast<std::ptrdiff_t>(bounds[c]),
                                    v.begin() + static_cast<std::ptrdiff_t>(bounds[c + 1]),
                                    less);
                        }
                      });

  // Merge tree: each round merges adjacent run pairs src -> dst in parallel.
  std::vector<T> scratch(v.size());
  std::vector<T>* src = &v;
  std::vector<T>* dst = &scratch;
  while (bounds.size() > 2) {
    const std::size_t runs = bounds.size() - 1;
    const std::size_t pairs = runs / 2;
    // chunks > 1 implies a real pool (chunk_count_for returns 1 otherwise).
    TaskGroup group(*pool);
    const auto merge_pair = [&](std::size_t p) {
      const std::size_t lo = bounds[2 * p];
      const std::size_t mid = bounds[2 * p + 1];
      const std::size_t hi = bounds[2 * p + 2];
      std::merge(src->begin() + static_cast<std::ptrdiff_t>(lo),
                 src->begin() + static_cast<std::ptrdiff_t>(mid),
                 src->begin() + static_cast<std::ptrdiff_t>(mid),
                 src->begin() + static_cast<std::ptrdiff_t>(hi),
                 dst->begin() + static_cast<std::ptrdiff_t>(lo), less);
    };
    for (std::size_t p = 0; p < pairs; ++p) {
      group.run([&merge_pair, p] { merge_pair(p); });
    }
    group.wait();
    if (runs % 2 != 0) {
      // Odd tail run: carried over unmerged.
      std::copy(src->begin() + static_cast<std::ptrdiff_t>(bounds[runs - 1]),
                src->begin() + static_cast<std::ptrdiff_t>(bounds[runs]),
                dst->begin() + static_cast<std::ptrdiff_t>(bounds[runs - 1]));
    }
    std::vector<std::size_t> next;
    next.reserve(pairs + 2);
    for (std::size_t p = 0; p <= pairs; ++p) next.push_back(bounds[2 * p]);
    if (runs % 2 != 0) next.push_back(bounds[runs]);
    else next.back() = bounds[runs];
    bounds = std::move(next);
    std::swap(src, dst);
  }
  if (src != &v) v = std::move(*src);
}

}  // namespace dm::exec
