// Stable LSD radix sort over packed unsigned keys.
//
// The canonical record order leads with densely packed integer fields
// (VIP, direction, minute, remote, arrival index), so the hot sorts in the
// pipeline are keyed by 64- or 128-bit unsigned integers. An LSD radix sort
// over 8-bit digits beats the comparison sort on those keys by a wide
// margin and — because every counting pass is stable — preserves the input
// order of equal keys, which is what the arrival-index tie-break and the
// shard merges rely on.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace dm::exec {

/// Software prefetch hints — no-ops where the builtin is unavailable and
/// semantically no-ops everywhere (hints cannot change results).
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0);
#else
  (void)p;
#endif
}

inline void prefetch_write(void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1);
#else
  (void)p;
#endif
}

/// A 128-bit sort key ordered by (hi, lo) — hi is the most significant
/// word. Packs e.g. (vip, direction, minute) into hi and (remote, arrival
/// index) into lo.
struct Key128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const Key128&, const Key128&) = default;
  friend constexpr std::strong_ordering operator<=>(const Key128& a,
                                                    const Key128& b) noexcept {
    if (a.hi != b.hi) return a.hi <=> b.hi;
    return a.lo <=> b.lo;
  }
};

namespace detail {

template <typename K>
inline constexpr std::size_t radix_words_v =
    std::is_same_v<K, Key128> ? 2 : 1;

/// w-th 64-bit word of the key, least significant first.
[[nodiscard]] inline std::uint64_t radix_word(const Key128& k,
                                              std::size_t w) noexcept {
  return w == 0 ? k.lo : k.hi;
}

template <typename K>
  requires std::is_unsigned_v<K>
[[nodiscard]] std::uint64_t radix_word(K k, std::size_t /*w*/) noexcept {
  return static_cast<std::uint64_t>(k);
}

}  // namespace detail

/// Sorts `items` by `key(item)` ascending, where the key type is an
/// unsigned integer or Key128. Stable: items with equal keys keep their
/// input order. Counting passes whose digit is constant across all items
/// are skipped, so keys that only vary in a few bytes (the common case for
/// a shard that owns a narrow VIP range) cost proportionally less.
template <typename T, typename KeyFn>
void radix_sort(std::vector<T>& items, KeyFn&& key) {
  using K = std::decay_t<decltype(key(items[0]))>;
  constexpr std::size_t kWords = detail::radix_words_v<K>;
  constexpr std::size_t kDigits = kWords * 8;
  const std::size_t n = items.size();
  if (n < 2) return;
  // Bucket counters are 32-bit; the pipeline's record-index space shares
  // the same bound (VipMinuteStats stores uint32 record ranges).
  assert(n <= UINT32_MAX);

  // Small inputs: the histogram passes dominate; fall back to a stable
  // comparison sort over the same keys.
  if (n < 64) {
    std::stable_sort(items.begin(), items.end(),
                     [&](const T& a, const T& b) { return key(a) < key(b); });
    return;
  }

  std::vector<K> keys;
  keys.reserve(n);
  for (const T& item : items) keys.push_back(key(item));

  // One pre-pass builds the histograms of every digit position at once.
  std::vector<std::array<std::uint32_t, 256>> counts(kDigits);
  for (auto& c : counts) c.fill(0);
  for (const K& k : keys) {
    for (std::size_t w = 0; w < kWords; ++w) {
      const std::uint64_t word = detail::radix_word(k, w);
      for (std::size_t b = 0; b < 8; ++b) {
        ++counts[w * 8 + b][(word >> (b * 8)) & 0xff];
      }
    }
  }

  std::vector<T> scratch_items(n);
  std::vector<K> scratch_keys(n);
  T* src_items = items.data();
  T* dst_items = scratch_items.data();
  K* src_keys = keys.data();
  K* dst_keys = scratch_keys.data();

  for (std::size_t d = 0; d < kDigits; ++d) {
    auto& count = counts[d];
    const std::size_t word = d / 8;
    const std::size_t shift = (d % 8) * 8;
    // A digit all items share sorts nothing — skip the pass.
    if (std::any_of(count.begin(), count.end(),
                    [n](std::uint32_t c) { return c == n; })) {
      continue;
    }
    std::uint32_t offset = 0;
    for (std::uint32_t& c : count) {
      const std::uint32_t next = offset + c;
      c = offset;
      offset = next;
    }
    // The scatter writes fan out over up to 256 destination streams — too
    // many for the hardware prefetchers to track. Peeking a fixed distance
    // ahead in the (sequential) key read and prefetching that item's
    // destination slot hides most of the write-allocate misses.
    constexpr std::size_t kScatterPrefetch = 16;
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kScatterPrefetch < n) {
        const std::size_t ahead =
            (detail::radix_word(src_keys[i + kScatterPrefetch], word) >>
             shift) & 0xff;
        prefetch_write(dst_items + count[ahead]);
        prefetch_write(dst_keys + count[ahead]);
      }
      const std::size_t bucket =
          (detail::radix_word(src_keys[i], word) >> shift) & 0xff;
      const std::uint32_t dst = count[bucket]++;
      dst_items[dst] = std::move(src_items[i]);
      dst_keys[dst] = src_keys[i];
    }
    std::swap(src_items, dst_items);
    std::swap(src_keys, dst_keys);
  }

  if (src_items != items.data()) {
    std::move(scratch_items.begin(), scratch_items.end(), items.begin());
  }
}

/// 16-bit-digit variant for 32-bit keys: two scatter passes instead of
/// four. Stable, so it yields exactly the permutation radix_sort does (the
/// stable order under a total key is unique) — digit width is purely a
/// throughput choice. The two histograms are 64Ki counters each (512 KiB
/// total) and the scatter fans out over up to 64Ki destination streams, so
/// whether halving the pass count beats the extra cache/TLB pressure is
/// host-dependent: on the reference host the paper-scale shard sort (~200K
/// items per shard) measured neutral-to-slower than the 8-bit sort, so the
/// aggregation pipeline stays on radix_sort. Kept as a library variant for
/// hosts/inputs where two passes win; differential tests pin it to the
/// 8-bit permutation. Inputs below half a histogram fall through.
template <typename T, typename KeyFn>
void radix_sort_wide(std::vector<T>& items, KeyFn&& key) {
  using K = std::decay_t<decltype(key(items[0]))>;
  static_assert(std::is_unsigned_v<K> && sizeof(K) <= 4,
                "radix_sort_wide takes 32-bit keys");
  constexpr std::size_t kBuckets = std::size_t{1} << 16;
  const std::size_t n = items.size();
  if (n < kBuckets / 2) {
    radix_sort(items, std::forward<KeyFn>(key));
    return;
  }
  assert(n <= UINT32_MAX);

  std::vector<std::uint32_t> keys;
  keys.reserve(n);
  for (const T& item : items) keys.push_back(key(item));

  // One pre-pass builds both digit histograms.
  std::vector<std::uint32_t> counts(2 * kBuckets, 0);
  for (const std::uint32_t k : keys) {
    ++counts[k & 0xffff];
    ++counts[kBuckets + (k >> 16)];
  }

  std::vector<T> scratch_items(n);
  std::vector<std::uint32_t> scratch_keys(n);
  T* src_items = items.data();
  T* dst_items = scratch_items.data();
  std::uint32_t* src_keys = keys.data();
  std::uint32_t* dst_keys = scratch_keys.data();

  for (std::size_t d = 0; d < 2; ++d) {
    std::uint32_t* count = counts.data() + d * kBuckets;
    const std::size_t shift = d * 16;
    // A digit all items share sorts nothing — skip the pass (any key's
    // bucket holding every item proves the digit constant).
    if (count[(src_keys[0] >> shift) & 0xffff] == n) continue;
    std::uint32_t offset = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint32_t next = offset + count[b];
      count[b] = offset;
      offset = next;
    }
    constexpr std::size_t kScatterPrefetch = 16;
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kScatterPrefetch < n) {
        const std::size_t ahead =
            (src_keys[i + kScatterPrefetch] >> shift) & 0xffff;
        prefetch_write(dst_items + count[ahead]);
        prefetch_write(dst_keys + count[ahead]);
      }
      const std::size_t bucket = (src_keys[i] >> shift) & 0xffff;
      const std::uint32_t dst = count[bucket]++;
      dst_items[dst] = std::move(src_items[i]);
      dst_keys[dst] = src_keys[i];
    }
    std::swap(src_items, dst_items);
    std::swap(src_keys, dst_keys);
  }

  if (src_items != items.data()) {
    std::move(scratch_items.begin(), scratch_items.end(), items.begin());
  }
}

}  // namespace dm::exec
