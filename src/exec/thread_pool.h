// A small work-stealing thread pool — the execution substrate that lets the
// pipeline shard its three hot stages (trace generation, window aggregation,
// per-series detection) across cores, standing in for the paper's
// Cosmos/SCOPE map-reduce cluster.
//
// Design constraints, in priority order:
//   1. Determinism lives one layer up: the pool makes NO ordering promises;
//      the parallel helpers in exec/parallel.h merge shard results in shard
//      index order so pipeline output is byte-identical for any thread count.
//   2. Nested parallelism must not deadlock: a thread that waits on a
//      TaskGroup helps execute queued tasks while it waits.
//   3. A pool with zero workers degenerates to inline execution on the
//      calling thread — the serial pipeline is literally the parallel one
//      run through ThreadPool(0).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dm::exec {

class ThreadPool;

/// Tracks one batch of tasks submitted to a pool. wait() blocks until every
/// task of the batch has finished — helping execute queued pool work in the
/// meantime — and then rethrows the exception of the lowest-sequence failed
/// task (lowest, so which task "wins" does not depend on thread timing).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) noexcept : pool_(&pool) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  /// Blocks until all tasks finished; swallows any pending exception (call
  /// wait() before destruction to observe it).
  ~TaskGroup();

  /// Submits one task. On an inline pool the task runs before run() returns.
  void run(std::function<void()> fn);

  /// Blocks until every submitted task completed; rethrows the first (by
  /// submission order) captured exception, if any.
  void wait();

 private:
  friend class ThreadPool;

  void finish_one(std::size_t seq, std::exception_ptr error);
  void wait_no_throw() noexcept;

  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t error_seq_ = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error_;
};

/// Fixed-size work-stealing pool. Each worker owns a deque: it pops its own
/// tasks LIFO (locality) and steals FIFO from siblings when idle. External
/// submitters round-robin across worker queues; worker-thread submitters
/// push to their own queue so nested fan-out stays local.
class ThreadPool {
 public:
  /// std::thread::hardware_concurrency(), clamped to at least 1.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

  /// Spawns `threads` workers. 0 means inline mode: no workers; TaskGroup
  /// runs every task immediately on the submitting thread.
  explicit ThreadPool(unsigned threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Drains queued tasks, then joins the workers.
  ~ThreadPool();

  /// Worker count; 0 for an inline pool.
  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    std::size_t seq = 0;
  };

  struct Worker {
    std::mutex mu;
    std::deque<Task> queue;
  };

  void submit(Task task);
  /// Steals and runs one queued task; false when every queue was empty.
  bool run_one();
  void worker_loop(unsigned index);
  static void execute(Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::size_t queued_ = 0;  ///< tasks sitting in some queue (guarded by wake_mu_)
  bool stop_ = false;       ///< guarded by wake_mu_

  std::mutex submit_mu_;
  std::size_t next_queue_ = 0;  ///< round-robin cursor for external submits
};

/// Maps a user-facing thread-count knob to a ThreadPool worker count:
/// 0 = hardware_concurrency; 1 "thread" = the calling thread, i.e. inline
/// mode with zero workers.
[[nodiscard]] inline unsigned workers_for(unsigned thread_count) noexcept {
  const unsigned threads =
      thread_count == 0 ? ThreadPool::hardware_threads() : thread_count;
  return threads <= 1 ? 0 : threads;
}

}  // namespace dm::exec
