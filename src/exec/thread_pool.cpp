#include "exec/thread_pool.h"

#include <chrono>
#include <utility>

namespace dm::exec {

namespace {

// Which pool (if any) owns the current thread; lets submits from worker
// threads target their own queue and lets run_one() pop LIFO from it.
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_index = -1;

}  // namespace

// ---------------------------------------------------------------------------
// TaskGroup

TaskGroup::~TaskGroup() { wait_no_throw(); }

void TaskGroup::run(std::function<void()> fn) {
  std::size_t seq;
  {
    std::lock_guard<std::mutex> g(mu_);
    seq = submitted_++;
  }
  if (pool_->thread_count() == 0) {
    // Inline pool: the submitting thread is the only thread of execution.
    ThreadPool::Task task{std::move(fn), this, seq};
    ThreadPool::execute(task);
    return;
  }
  pool_->submit(ThreadPool::Task{std::move(fn), this, seq});
}

void TaskGroup::wait() {
  for (;;) {
    // Help drain the pool instead of blocking: this is what makes nested
    // parallel sections (a task waiting on its own sub-group) safe even on a
    // one-worker pool.
    while (pool_->run_one()) {
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (completed_ == submitted_) break;
    // Tasks of this group are in flight on other threads; they may also
    // enqueue further work we could help with, so poll rather than park.
    done_cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> g(mu_);
    error = std::exchange(error_, nullptr);
    error_seq_ = std::numeric_limits<std::size_t>::max();
  }
  if (error) std::rethrow_exception(error);
}

void TaskGroup::wait_no_throw() noexcept {
  try {
    wait();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // Destructor path: the batch still has to finish; the error is lost.
  }
}

void TaskGroup::finish_one(std::size_t seq, std::exception_ptr error) {
  std::lock_guard<std::mutex> g(mu_);
  ++completed_;
  if (error != nullptr && seq < error_seq_) {
    // Keep the failure of the earliest-submitted task so the exception a
    // caller sees does not depend on scheduling.
    error_seq_ = seq;
    error_ = std::move(error);
  }
  if (completed_ == submitted_) done_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// ThreadPool

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  std::size_t target;
  if (tls_pool == this && tls_index >= 0) {
    target = static_cast<std::size_t>(tls_index);
  } else {
    std::lock_guard<std::mutex> g(submit_mu_);
    target = next_queue_++ % workers_.size();
  }
  {
    Worker& w = *workers_[target];
    std::lock_guard<std::mutex> g(w.mu);
    w.queue.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> g(wake_mu_);
    ++queued_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::run_one() {
  const std::size_t n = workers_.size();
  if (n == 0) return false;
  const int self = tls_pool == this ? tls_index : -1;

  Task task;
  bool got = false;
  if (self >= 0) {
    // Own queue, newest first: nested submissions run hot in cache.
    Worker& w = *workers_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> g(w.mu);
    if (!w.queue.empty()) {
      task = std::move(w.queue.back());
      w.queue.pop_back();
      got = true;
    }
  }
  if (!got) {
    // Steal oldest-first from siblings (or any queue, for external helpers).
    const std::size_t start =
        self >= 0 ? static_cast<std::size_t>(self) + 1
                  // dmlint: allow(nondeterministic-call) steal-start choice is scheduling-only; results merge in deterministic shard order
                  : std::hash<std::thread::id>{}(std::this_thread::get_id());
    for (std::size_t k = 0; k < n && !got; ++k) {
      Worker& w = *workers_[(start + k) % n];
      std::lock_guard<std::mutex> g(w.mu);
      if (!w.queue.empty()) {
        task = std::move(w.queue.front());
        w.queue.pop_front();
        got = true;
      }
    }
  }
  if (!got) return false;

  {
    std::lock_guard<std::mutex> g(wake_mu_);
    --queued_;
  }
  execute(task);
  return true;
}

void ThreadPool::worker_loop(unsigned index) {
  tls_pool = this;
  tls_index = static_cast<int>(index);
  for (;;) {
    if (run_one()) continue;
    std::unique_lock<std::mutex> lk(wake_mu_);
    if (stop_ && queued_ == 0) return;
    if (queued_ > 0) continue;  // missed a steal race; rescan the queues
    wake_cv_.wait(lk);
  }
}

void ThreadPool::execute(Task& task) {
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  task.group->finish_one(task.seq, std::move(error));
}

}  // namespace dm::exec
