// as_forensics: attributing attacks to the Internet.
//
// Runs a study and produces the §6-style forensic report: are sources
// spoofed, which ASes and regions originate inbound attacks, where outbound
// attacks land, and how concentrated the attack infrastructure is.
//
//   ./build/examples/as_forensics
#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/as_analysis.h"
#include "analysis/spoof_analysis.h"
#include "core/study.h"
#include "util/table.h"

int main() {
  using namespace dm;
  sim::ScenarioConfig config = sim::ScenarioConfig::smoke();
  config.vips.vip_count = 300;
  config.days = 3;
  config.seed = 606;
  const core::Study study(config);

  // 1. Spoofing check first — spoofed sources must not be attributed.
  const auto spoof = analysis::analyze_spoofing(
      study.trace(), study.detection().incidents, &study.blacklist());
  std::printf("== source spoofing (Anderson-Darling) ==\n");
  for (sim::AttackType t : sim::kAllAttackTypes) {
    const std::size_t i = sim::index_of(t);
    if (spoof.tested[i] == 0) continue;
    std::printf("  %-12s %3llu incidents tested, %s spoofed\n",
                std::string(sim::to_string(t)).c_str(),
                static_cast<unsigned long long>(spoof.tested[i]),
                util::format_percent(spoof.spoofed_fraction[i]).c_str());
  }

  // 2. AS-class attribution, both directions.
  for (netflow::Direction dir :
       {netflow::Direction::kInbound, netflow::Direction::kOutbound}) {
    const auto result = analysis::analyze_as(
        study.trace(), study.detection().incidents, study.scenario().ases(),
        dir, dir == netflow::Direction::kInbound ? &spoof : nullptr,
        &study.blacklist());
    std::printf("\n== %s attack attribution (%llu of %llu incidents mapped) ==\n",
                std::string(netflow::to_string(dir)).c_str(),
                static_cast<unsigned long long>(result.incidents_mapped),
                static_cast<unsigned long long>(result.incidents_total));
    util::TextTable table;
    table.set_header({"AS class", "% of attacks", "packet share"});
    for (std::size_t c = 0; c < analysis::kAsClassCount; ++c) {
      if (result.class_share[c] == 0.0) continue;
      table.row(std::string(cloud::to_string(cloud::kAllAsClasses[c])),
                util::format_percent(result.class_share[c]),
                util::format_percent(result.packet_share[c]));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("top AS: ASN %u on %s of attacks; single-AS attacks: %s\n",
                result.top_asn, util::format_percent(result.top_as_share).c_str(),
                util::format_percent(result.single_as_fraction).c_str());
  }

  // 3. Geolocation rollup.
  const auto geo_in = analysis::analyze_geo(
      study.trace(), study.detection().incidents, study.scenario().ases(),
      netflow::Direction::kInbound, &spoof, &study.blacklist());
  std::printf("\n== inbound source regions ==\n");
  std::vector<std::pair<double, std::size_t>> regions;
  for (std::size_t r = 0; r < std::size(cloud::kAllGeoRegions); ++r) {
    regions.push_back({geo_in.region_share[r], r});
  }
  std::sort(regions.begin(), regions.end(), std::greater<>());
  for (const auto& [share, r] : regions) {
    if (share == 0.0) continue;
    std::printf("  %-10s %s\n",
                std::string(cloud::to_string(cloud::kAllGeoRegions[r])).c_str(),
                util::format_percent(share).c_str());
  }

  // 4. TDS infrastructure contact summary.
  std::size_t tds_incidents = 0;
  for (const auto& inc : study.detection().incidents) {
    if (inc.type == sim::AttackType::kTds) ++tds_incidents;
  }
  std::printf("\n== malicious web infrastructure (TDS) ==\n");
  std::printf("  blacklist size: %zu hosts; incidents touching it: %zu\n",
              study.scenario().tds().hosts().size(), tds_incidents);
  return 0;
}
