// outbound_audit: hunting compromised and abusive tenants.
//
// Runs a full study, then answers the operator questions of §4: which VIPs
// generate outbound attacks, which were compromised (inbound attack followed
// by outbound attacks — the Fig 5 pattern), and which tenant classes are
// doing the attacking.
//
//   ./build/examples/outbound_audit
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/study.h"
#include "detect/correlator.h"
#include "util/table.h"

int main() {
  using namespace dm;
  sim::ScenarioConfig config = sim::ScenarioConfig::smoke();
  config.vips.vip_count = 300;
  config.days = 3;
  config.seed = 4242;
  const core::Study study(config);

  const auto& incidents = study.detection().incidents;

  // 1. Outbound attack activity per tenant class.
  std::map<cloud::TenantClass, std::pair<std::size_t, std::size_t>> per_tenant;
  std::map<std::uint32_t, std::size_t> per_vip;
  for (const auto& inc : incidents) {
    if (inc.direction != netflow::Direction::kOutbound) continue;
    per_vip[inc.vip.value()] += 1;
    const auto* vip = study.scenario().vips().lookup(inc.vip);
    if (vip != nullptr) per_tenant[vip->tenant].first += 1;
  }
  for (const auto& [vip_value, n] : per_vip) {
    const auto* vip =
        study.scenario().vips().lookup(netflow::IPv4(vip_value));
    if (vip != nullptr) per_tenant[vip->tenant].second += 1;
  }

  std::printf("== outbound abuse by tenant class ==\n");
  util::TextTable tenant_table;
  tenant_table.set_header({"tenant class", "outbound incidents", "attacking VIPs"});
  for (const auto& [tenant, counts] : per_tenant) {
    tenant_table.row(std::string(cloud::to_string(tenant)), counts.first,
                     counts.second);
  }
  std::fputs(tenant_table.render().c_str(), stdout);

  // 2. The most active abusers.
  std::vector<std::pair<std::size_t, std::uint32_t>> ranked;
  for (const auto& [vip, n] : per_vip) ranked.push_back({n, vip});
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  std::printf("\n== most active outbound attackers ==\n");
  for (std::size_t i = 0; i < ranked.size() && i < 5; ++i) {
    const auto* vip =
        study.scenario().vips().lookup(netflow::IPv4(ranked[i].second));
    std::printf("  %-15s %-14s %zu incidents\n",
                netflow::IPv4(ranked[i].second).to_string().c_str(),
                vip != nullptr ? std::string(cloud::to_string(vip->tenant)).c_str()
                               : "?",
                ranked[i].first);
  }

  // 3. Compromise chains: inbound entry followed by outbound attacks.
  const auto chains = detect::find_compromise_chains(incidents);
  std::printf("\n== compromise chains (inbound -> outbound on one VIP) ==\n");
  if (chains.empty()) std::printf("  none detected\n");
  for (const auto& chain : chains) {
    const auto& in = incidents[chain.inbound_incident];
    const auto& out = incidents[chain.outbound_incident];
    const auto* vip = study.scenario().vips().lookup(chain.vip);
    std::printf("  vip=%s (%s%s): %s inbound at %s -> %s outbound at %s\n",
                chain.vip.to_string().c_str(),
                vip != nullptr ? std::string(cloud::to_string(vip->tenant)).c_str()
                               : "?",
                vip != nullptr && vip->weak_credentials ? ", weak credentials"
                                                        : "",
                std::string(sim::to_string(in.type)).c_str(),
                util::format_minute(in.start).c_str(),
                std::string(sim::to_string(out.type)).c_str(),
                util::format_minute(out.start).c_str());
  }

  // 4. Suggested mitigation queue: shut down frequent offenders first (§4.1:
  //    "the misbehaving instances are aggressively shut down").
  std::printf("\n== mitigation queue (VIPs with > 3 outbound incidents) ==\n");
  std::size_t flagged = 0;
  for (const auto& [n, vip] : ranked) {
    if (n > 3) {
      std::printf("  shutdown-review %s (%zu incidents)\n",
                  netflow::IPv4(vip).to_string().c_str(), n);
      ++flagged;
    }
  }
  if (flagged == 0) std::printf("  queue empty\n");
  return 0;
}
