// Quickstart: generate a small simulated cloud trace, run the detection
// pipeline, and print what was found.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <algorithm>
#include <cstdio>

#include "analysis/overview.h"
#include "core/study.h"
#include "util/table.h"

int main() {
  using namespace dm;

  // 1. Configure a scenario: a small cloud observed for two days.
  sim::ScenarioConfig config = sim::ScenarioConfig::smoke();
  config.seed = 2026;

  // 2. Run the whole study: world -> sampled NetFlow -> windows -> incidents.
  const core::Study study(config);

  std::printf("simulated %zu VIPs across %zu data centers, %d days\n",
              study.scenario().vips().size(),
              study.scenario().vips().data_centers().size(), config.days);
  std::printf("sampled NetFlow records: %llu (1:%u sampling)\n",
              static_cast<unsigned long long>(study.record_count()),
              study.sampling());
  std::printf("ground-truth attack episodes: %zu\n",
              study.truth().episodes.size());
  std::printf("detected attack incidents:    %zu\n\n",
              study.detection().incidents.size());

  // 3. Summarize what the detectors saw.
  const auto mix = analysis::compute_attack_mix(study.detection().incidents);
  util::TextTable table;
  table.set_header({"Attack", "Inbound", "Outbound"});
  for (sim::AttackType t : sim::kAllAttackTypes) {
    table.row(std::string(sim::to_string(t)),
              mix.inbound[sim::index_of(t)], mix.outbound[sim::index_of(t)]);
  }
  std::fputs(table.render().c_str(), stdout);

  // 4. Show the five most intense incidents.
  auto incidents = study.detection().incidents;
  std::sort(incidents.begin(), incidents.end(),
            [](const auto& a, const auto& b) {
              return a.peak_sampled_ppm > b.peak_sampled_ppm;
            });
  std::printf("\nTop incidents by peak rate:\n");
  for (std::size_t i = 0; i < incidents.size() && i < 5; ++i) {
    const auto& inc = incidents[i];
    std::printf("  %-12s %-8s vip=%s  %s..%s  peak ~%s\n",
                std::string(sim::to_string(inc.type)).c_str(),
                std::string(netflow::to_string(inc.direction)).c_str(),
                inc.vip.to_string().c_str(),
                util::format_minute(inc.start).c_str(),
                util::format_minute(inc.end).c_str(),
                util::format_pps(inc.estimated_peak_pps(study.sampling())).c_str());
  }
  return 0;
}
