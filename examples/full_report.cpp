// full_report: the complete §3-§6 characterization in one run.
//
// Builds a study and prints the whole report — the closest thing to
// re-running the paper on a trace of your own. Also shows the §4.1
// signature-extraction step for the most-attacked VIP.
//
//   ./build/examples/full_report [vips] [days] [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "analysis/signature.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace dm;
  sim::ScenarioConfig config = sim::ScenarioConfig::smoke();
  config.vips.vip_count =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 300;
  config.days = argc > 2 ? std::atoi(argv[2]) : 3;
  config.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 99;

  const core::Study study(config);
  const core::StudyReport report = core::build_report(study);
  std::fputs(core::render_report(report, study).c_str(), stdout);

  // §4.1: extract filtering signatures for the most frequently attacked VIP.
  std::map<std::uint32_t, std::size_t> inbound_counts;
  for (const auto& inc : study.detection().incidents) {
    if (inc.direction == netflow::Direction::kInbound) {
      inbound_counts[inc.vip.value()] += 1;
    }
  }
  std::uint32_t hot_vip = 0;
  std::size_t hot_count = 0;
  for (const auto& [vip, n] : inbound_counts) {
    if (n > hot_count) {
      hot_vip = vip;
      hot_count = n;
    }
  }
  if (hot_count > 0) {
    std::printf("== signatures for the most-attacked VIP (%s, %zu inbound "
                "incidents) ==\n",
                netflow::IPv4(hot_vip).to_string().c_str(), hot_count);
    const auto rules = analysis::extract_signatures(
        study.trace(), study.detection().incidents, netflow::IPv4(hot_vip),
        analysis::SignatureConfig{}, &study.blacklist());
    if (rules.empty()) std::printf("  (no stable signature found)\n");
    for (const auto& rule : rules) {
      std::printf("  %s\n", analysis::to_string(rule).c_str());
    }
  }
  return 0;
}
