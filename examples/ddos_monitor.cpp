// ddos_monitor: streaming inbound attack monitoring.
//
// Demonstrates the streaming detector API: NetFlow windows are fed
// minute-by-minute (as an edge collector would deliver them) and alerts
// print the moment a window trips a detector — no batch pipeline involved.
//
//   ./build/examples/ddos_monitor [minutes]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "detect/detectors.h"
#include "netflow/window_aggregator.h"
#include "sim/trace_generator.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dm;
  const util::Minute monitor_minutes =
      argc > 1 ? std::atoll(argv[1]) : 12 * util::kMinutesPerHour;

  // A small cloud under observation.
  sim::ScenarioConfig config = sim::ScenarioConfig::smoke();
  config.vips.vip_count = 120;
  config.days = 1;
  config.seed = 555;
  const sim::Scenario scenario(config);
  auto generated = sim::generate_trace(scenario);
  const auto trace = netflow::aggregate_windows(
      std::move(generated.records), scenario.vips().cloud_space(),
      &scenario.tds().as_prefix_set());

  // Order windows by time (the aggregator sorts by VIP) to emulate a feed.
  std::vector<const netflow::VipMinuteStats*> feed;
  for (const auto& w : trace.windows()) {
    if (w.direction == netflow::Direction::kInbound) feed.push_back(&w);
  }
  std::sort(feed.begin(), feed.end(),
            [](const netflow::VipMinuteStats* a, const netflow::VipMinuteStats* b) {
              if (a->minute != b->minute) return a->minute < b->minute;
              return a->vip < b->vip;
            });

  // One streaming detector per VIP, created on first sight.
  std::map<std::uint32_t, detect::SeriesDetector> detectors;
  const detect::DetectionConfig detection_config;
  std::size_t alerts = 0;

  std::printf("monitoring %zu VIPs for %lld minutes of inbound NetFlow...\n\n",
              scenario.vips().size(),
              static_cast<long long>(monitor_minutes));
  for (const auto* w : feed) {
    if (w->minute >= monitor_minutes) break;
    auto [it, inserted] =
        detectors.try_emplace(w->vip.value(), detection_config);
    const auto verdicts = it->second.observe(*w);
    for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
      if (!verdicts[t].attack) continue;
      ++alerts;
      if (alerts <= 40) {
        std::printf("[%s] ALERT %-11s vip=%-15s ~%s, %u remotes\n",
                    util::format_minute(w->minute).c_str(),
                    std::string(sim::to_string(sim::kAllAttackTypes[t])).c_str(),
                    w->vip.to_string().c_str(),
                    util::format_pps(static_cast<double>(verdicts[t].sampled_packets) *
                                     config.sampling / 60.0)
                        .c_str(),
                    verdicts[t].unique_remotes);
      }
    }
  }
  if (alerts > 40) std::printf("... and %zu more alerts\n", alerts - 40);
  std::printf("\ntotal alert-minutes: %zu (ground truth had %zu episodes)\n",
              alerts, generated.truth.episodes.size());
  return 0;
}
