// trace_roundtrip: working with traces on disk.
//
// Generates a sampled NetFlow trace, serializes it to the binary .dmnf
// format, reads it back, and runs detection on the loaded copy — the
// workflow for analyzing captured traces offline or sharing them between
// machines.
//
//   ./build/examples/trace_roundtrip [path]
#include <cstdio>
#include <filesystem>

#include "detect/pipeline.h"
#include "netflow/trace_io.h"
#include "netflow/window_aggregator.h"
#include "sim/trace_generator.h"

int main(int argc, char** argv) {
  using namespace dm;
  const std::string path =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "darkmenace.dmnf")
                     .string();

  // Generate and persist.
  sim::ScenarioConfig config = sim::ScenarioConfig::smoke();
  config.vips.vip_count = 100;
  config.days = 1;
  const sim::Scenario scenario(config);
  auto generated = sim::generate_trace(scenario);
  std::printf("generated %zu sampled records; writing %s\n",
              generated.records.size(), path.c_str());
  netflow::write_trace_file(path, generated.records, config.sampling);
  std::printf("file size: %ju bytes (%.1f bytes/record)\n",
              static_cast<std::uintmax_t>(std::filesystem::file_size(path)),
              static_cast<double>(std::filesystem::file_size(path)) /
                  static_cast<double>(generated.records.size()));

  // Load and verify integrity.
  std::uint32_t sampling = 0;
  const auto loaded = netflow::read_trace_file(path, &sampling);
  std::printf("reloaded %zu records at 1:%u sampling — %s\n", loaded.size(),
              sampling,
              loaded == generated.records ? "bit-exact" : "MISMATCH");

  // Analyze the loaded copy.
  const auto trace = netflow::aggregate_windows(
      loaded, scenario.vips().cloud_space(), &scenario.tds().as_prefix_set());
  const auto result = detect::DetectionPipeline{}.run(trace);
  std::printf("windows: %zu, detected incidents: %zu\n",
              trace.windows().size(), result.incidents.size());

  std::filesystem::remove(path);
  return loaded == generated.records ? 0 : 1;
}
