// dmflow: fixture and mutation coverage for the cross-TU flow rules
// (durability-order, unchecked-failable, ledger-conservation, guarded-by).
//
// The fixture tests pin each rule's positive / suppressed / clean behavior
// on small synthetic sources. The mutation tests are the teeth: they take
// the REAL tree, delete one load-bearing line (an fsync, a ledger
// increment, a lock, a [[nodiscard]]), and assert the scan reports exactly
// one new finding naming that line — proving the annotations in src/ are
// live and the rules would catch the regression they were written for.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace dm::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

LintReport lint_fixture(const std::string& name) {
  const std::string path =
      std::string(DM_SOURCE_ROOT) + "/tests/lint/fixtures/" + name;
  return run_lint({SourceFile{name, read_file(path)}});
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&rule](const Finding& f) { return f.rule == rule; }));
}

/// Scans the real tree with `needle` (in file `rel`) replaced by
/// `replacement` and returns the report. Fails the test if the needle is
/// missing or ambiguous — a stale needle must break loudly, not scan the
/// unmutated tree.
LintReport lint_mutated(const std::string& rel, const std::string& needle,
                        const std::string& replacement) {
  auto files = load_tree(DM_SOURCE_ROOT, {"src", "tools"});
  auto it = std::find_if(
      files.begin(), files.end(),
      [&rel](const SourceFile& f) { return f.path == rel; });
  EXPECT_NE(it, files.end()) << rel;
  const std::size_t pos = it->text.find(needle);
  EXPECT_NE(pos, std::string::npos) << "needle not found in " << rel;
  EXPECT_EQ(it->text.find(needle, pos + 1), std::string::npos)
      << "needle ambiguous in " << rel;
  it->text.replace(pos, needle.size(), replacement);
  return run_lint(files);
}

/// Asserts the mutated tree produced exactly one finding, of `rule`, whose
/// message contains `substr`. (The unmutated tree scans clean — see
/// LintSelfScan — so one finding total means one NEW finding.)
void expect_single_finding(const LintReport& report, const std::string& rule,
                           const std::string& substr) {
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.rule, rule) << f.file << ":" << f.line << " " << f.message;
    EXPECT_NE(f.message.find(substr), std::string::npos) << f.message;
  }
  EXPECT_EQ(report.findings.size(), 1u);
}

// --- durability-order fixtures --------------------------------------------

TEST(DmflowRules, DurabilityPositive) {
  const auto report = lint_fixture("durability_positive.cc");
  EXPECT_EQ(count_rule(report.findings, kRuleDurabilityOrder), 1u);
  EXPECT_EQ(report.findings.size(), 1u);
}

TEST(DmflowRules, DurabilitySuppressed) {
  const auto report = lint_fixture("durability_suppressed.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(count_rule(report.suppressed, kRuleDurabilityOrder), 1u);
}

TEST(DmflowRules, DurabilityClean) {
  const auto report = lint_fixture("durability_clean.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.suppressed.empty());
}

TEST(DmflowRules, UnmatchedDurableCommitIsADirectiveFinding) {
  const auto report = run_lint({SourceFile{
      "inline.cc", "void f() {\n  // dmlint: durable-commit\n  int x = 0;\n}\n"}});
  EXPECT_EQ(count_rule(report.findings, kRuleDirective), 1u);
}

// --- unchecked-failable fixtures ------------------------------------------

TEST(DmflowRules, MustUsePositive) {
  const auto report = lint_fixture("must_use_positive.cc");
  // One [[nodiscard]]-coverage finding on the producer, one discarded call.
  EXPECT_EQ(count_rule(report.findings, kRuleMustUse), 2u);
  EXPECT_EQ(report.findings.size(), 2u);
}

TEST(DmflowRules, MustUseSuppressed) {
  const auto report = lint_fixture("must_use_suppressed.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(count_rule(report.suppressed, kRuleMustUse), 1u);
}

TEST(DmflowRules, MustUseClean) {
  const auto report = lint_fixture("must_use_clean.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.suppressed.empty());
}

// --- ledger-conservation fixtures -----------------------------------------

TEST(DmflowRules, LedgerPositive) {
  const auto report = lint_fixture("ledger_positive.cc");
  ASSERT_EQ(count_rule(report.findings, kRuleLedger), 1u);
  EXPECT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("dropped"), std::string::npos);
}

TEST(DmflowRules, LedgerSuppressed) {
  const auto report = lint_fixture("ledger_suppressed.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(count_rule(report.suppressed, kRuleLedger), 1u);
}

TEST(DmflowRules, LedgerClean) {
  const auto report = lint_fixture("ledger_clean.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.suppressed.empty());
}

// --- guarded-by fixtures --------------------------------------------------

TEST(DmflowRules, GuardedPositive) {
  const auto report = lint_fixture("guarded_positive.cc");
  ASSERT_EQ(count_rule(report.findings, kRuleGuardedBy), 1u);
  EXPECT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("depth_"), std::string::npos);
}

TEST(DmflowRules, GuardedSuppressed) {
  const auto report = lint_fixture("guarded_suppressed.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(count_rule(report.suppressed, kRuleGuardedBy), 1u);
}

TEST(DmflowRules, GuardedClean) {
  const auto report = lint_fixture("guarded_clean.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.suppressed.empty());
}

// --- mutations against the real tree --------------------------------------

TEST(DmflowMutation, DeletingAShardFsyncFailsDurability) {
  const auto report =
      lint_mutated("src/serve/checkpoint.cpp", "fsync_path(part);", "");
  expect_single_finding(report, kRuleDurabilityOrder, "'part'");
}

TEST(DmflowMutation, DeletingTheStagingDirFsyncFailsDurability) {
  const auto report =
      lint_mutated("src/serve/checkpoint.cpp", "fsync_dir(staging);", "");
  expect_single_finding(report, kRuleDurabilityOrder, "'staging'");
}

TEST(DmflowMutation, DeletingTheCommitDirFsyncFailsDurability) {
  const auto report =
      lint_mutated("src/serve/checkpoint.cpp", "fsync_dir(root_);", "");
  expect_single_finding(report, kRuleDurabilityOrder,
                        "not followed by a directory fsync");
}

TEST(DmflowMutation, DroppingALedgerIncrementFailsConservation) {
  const auto report =
      lint_mutated("src/serve/supervisor.cpp", "++bb.shed;", "");
  expect_single_finding(report, kRuleLedger, "shed");
}

TEST(DmflowMutation, NarrowingTheDropTotalFailsLedgerTotal) {
  const auto report = lint_mutated(
      "src/detect/stream.h",
      "return records_late_ + records_unclassifiable_ + records_duplicate_ +",
      "return records_late_ + records_unclassifiable_ +");
  expect_single_finding(report, kRuleLedger, "records_duplicate_");
}

TEST(DmflowMutation, RemovingTheStatsLockFailsGuardedBy) {
  const auto report = lint_mutated(
      "src/serve/writer.cpp",
      "WriterStats BufferedWriter::stats() const {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  return stats_;",
      "WriterStats BufferedWriter::stats() const {\n"
      "  return stats_;");
  expect_single_finding(report, kRuleGuardedBy, "stats_");
}

TEST(DmflowMutation, RemovingTheLastNodiscardFailsCoverage) {
  const auto report = lint_mutated(
      "src/netflow/trace_io.h",
      "[[nodiscard]] SalvageResult salvage_trace_file",
      "SalvageResult salvage_trace_file");
  expect_single_finding(report, kRuleMustUse, "salvage_trace_file");
}

TEST(DmflowMutation, DiscardingAMustUseResultIsAFinding) {
  // Turn a consuming call site into a bare expression statement.
  const auto report = lint_mutated(
      "src/serve/checkpoint.cpp",
      "fs::rename(staging, gen_dir(gen));",
      "fs::rename(staging, gen_dir(gen));\n  recover(ledger_unused);");
  // The injected call discards LoadedGeneration; nothing else may fire.
  expect_single_finding(report, kRuleMustUse, "recover");
}

}  // namespace
}  // namespace dm::lint
