// Rotation-coverage tripwire: every checkpointed struct the serve fleet
// serializes into a generation (named in a `dmlint: covers(var, Struct)`
// region of the fleet's serialization code) must be named by the rotation
// test suite. dmlint already proves covers regions touch every field; this
// test closes the remaining gap — a new checkpointed struct whose bytes
// never pass through the crash matrix's byte-identity oracle.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace dm::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string repo_path(const std::string& rel) {
  return std::string(DM_SOURCE_ROOT) + "/" + rel;
}

/// Struct names from `dmlint: covers(var, Struct)` directives in `text`.
std::set<std::string> covers_structs(const std::string& text) {
  std::set<std::string> names;
  const std::string needle = "dmlint: covers(";
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    const std::size_t open = pos + needle.size();
    const std::size_t comma = text.find(',', open);
    const std::size_t close = text.find(')', open);
    if (comma == std::string::npos || close == std::string::npos ||
        comma > close) {
      continue;
    }
    std::string name = text.substr(comma + 1, close - comma - 1);
    name.erase(0, name.find_first_not_of(" \t"));
    name.erase(name.find_last_not_of(" \t") + 1);
    if (!name.empty()) names.insert(name);
  }
  return names;
}

/// Marked `// dmlint: checkpointed` struct names declared in `text`: for
/// each marker, the nearest preceding `struct <Name>`.
std::set<std::string> checkpointed_structs(const std::string& text) {
  std::set<std::string> names;
  for (std::size_t pos = text.find("dmlint: checkpointed");
       pos != std::string::npos;
       pos = text.find("dmlint: checkpointed", pos + 1)) {
    const std::size_t decl = text.rfind("struct ", pos);
    if (decl == std::string::npos) continue;
    std::size_t start = decl + 7;
    std::size_t end = start;
    while (end < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[end])) != 0 ||
            text[end] == '_')) {
      ++end;
    }
    if (end > start) names.insert(text.substr(start, end - start));
  }
  return names;
}

bool contains_word(const std::string& text, const std::string& word) {
  const auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  for (std::size_t pos = text.find(word); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= text.size() || !is_ident(text[after]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

TEST(RotationCoverage, EveryServePersistedStructIsNamedByRotationTests) {
  // The serve fleet's serialization TUs: everything a generation contains
  // is written by one of these files.
  const std::vector<std::string> serialization_sources = {
      "src/serve/supervisor.cpp",
      "src/detect/stream.cpp",
  };
  // Struct declarations the fleet marks as checkpointed.
  const std::vector<std::string> declaration_sources = {
      "src/serve/supervisor.h",
      "src/detect/stream.h",
  };
  // The tests that drive the crash matrix / checkpoint byte-identity oracle.
  const std::vector<std::string> rotation_tests = {
      "tests/serve/rotation_crash_test.cpp",
      "tests/serve/supervisor_test.cpp",
      "tests/detect/stream_checkpoint_test.cpp",
      "tests/detect/stream_restore_error_test.cpp",
  };

  std::set<std::string> persisted;
  for (const std::string& rel : serialization_sources) {
    for (const std::string& name : covers_structs(read_file(repo_path(rel)))) {
      persisted.insert(name);
    }
  }
  for (const std::string& rel : declaration_sources) {
    for (const std::string& name :
         checkpointed_structs(read_file(repo_path(rel)))) {
      persisted.insert(name);
    }
  }
  ASSERT_GE(persisted.size(), 8u)
      << "the serve fleet's covers regions went missing";
  EXPECT_TRUE(persisted.count("TenantBook") == 1 &&
              persisted.count("OpenWindow") == 1)
      << "expected anchor structs disappeared — did serialization move?";

  std::string test_text;
  for (const std::string& rel : rotation_tests) {
    test_text += read_file(repo_path(rel));
  }
  for (const std::string& name : persisted) {
    EXPECT_TRUE(contains_word(test_text, name))
        << "checkpointed struct " << name
        << " is serialized into serve generations but never named by the "
           "rotation test suite; extend the crash matrix (or its coverage "
           "manifest) to exercise it";
  }
}

}  // namespace
}  // namespace dm::lint
