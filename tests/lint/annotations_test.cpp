#include "lint/annotations.h"

#include <gtest/gtest.h>

#include <string>

#include "lint/lint.h"
#include "lint/token.h"

namespace dm::lint {
namespace {

ParsedAnnotations parse(const std::string& text) {
  return parse_annotations(tokenize(text), rule_names());
}

// --- target-line resolution -----------------------------------------------

TEST(LintAnnotations, OwnLineCommentGovernsNextCodeLine) {
  const auto parsed = parse(
      "// dmlint: must-use\n"
      "\n"
      "struct R { int a; };\n");
  ASSERT_EQ(parsed.annotations.size(), 1u);
  EXPECT_EQ(parsed.annotations[0].kind, Annotation::Kind::kMustUse);
  EXPECT_EQ(parsed.annotations[0].line, 1);
  EXPECT_EQ(parsed.annotations[0].target_line, 3);
}

TEST(LintAnnotations, TrailingCommentGovernsItsOwnLine) {
  const auto parsed = parse("int x = f();  // dmlint: allow(sort-tie-break) r\n");
  ASSERT_EQ(parsed.annotations.size(), 1u);
  EXPECT_EQ(parsed.annotations[0].target_line, 1);
}

// --- per-keyword parsing --------------------------------------------------

TEST(LintAnnotations, AllowCarriesRuleAndReason) {
  const auto parsed =
      parse("// dmlint: allow(guarded-by) stale read is a benign hint\n"
            "int x;\n");
  ASSERT_EQ(parsed.annotations.size(), 1u);
  const Annotation& a = parsed.annotations[0];
  EXPECT_EQ(a.kind, Annotation::Kind::kAllow);
  EXPECT_EQ(a.arg1, "guarded-by");
  EXPECT_EQ(a.reason, "stale read is a benign hint");
}

TEST(LintAnnotations, CoversCarriesVarAndStruct) {
  const auto parsed = parse("// dmlint: covers(w, MinuteWindow)\nint x;\n");
  ASSERT_EQ(parsed.annotations.size(), 1u);
  EXPECT_EQ(parsed.annotations[0].kind, Annotation::Kind::kCovers);
  EXPECT_EQ(parsed.annotations[0].arg1, "w");
  EXPECT_EQ(parsed.annotations[0].arg2, "MinuteWindow");
}

TEST(LintAnnotations, DurableCommitPairParsesWithoutArgs) {
  const auto parsed = parse(
      "// dmlint: durable-commit\n"
      "int a;\n"
      "// dmlint: durable-commit-end\n"
      "int b;\n");
  ASSERT_EQ(parsed.annotations.size(), 2u);
  EXPECT_EQ(parsed.annotations[0].kind, Annotation::Kind::kDurableCommit);
  EXPECT_EQ(parsed.annotations[1].kind, Annotation::Kind::kDurableCommitEnd);
  EXPECT_TRUE(parsed.errors.empty());
}

TEST(LintAnnotations, LedgerFamilyCarriesItsGroup) {
  const auto parsed = parse(
      "// dmlint: ledger(admission)\n"
      "int offered;\n"
      "// dmlint: ledger-total(admission)\n"
      "int total();\n"
      "// dmlint: guarded-by(mu_)\n"
      "int depth;\n");
  ASSERT_EQ(parsed.annotations.size(), 3u);
  EXPECT_EQ(parsed.annotations[0].kind, Annotation::Kind::kLedger);
  EXPECT_EQ(parsed.annotations[0].arg1, "admission");
  EXPECT_EQ(parsed.annotations[1].kind, Annotation::Kind::kLedgerTotal);
  EXPECT_EQ(parsed.annotations[1].arg1, "admission");
  EXPECT_EQ(parsed.annotations[2].kind, Annotation::Kind::kGuardedBy);
  EXPECT_EQ(parsed.annotations[2].arg1, "mu_");
}

// --- malformed directives -------------------------------------------------

TEST(LintAnnotations, LedgerWithoutGroupIsADirectiveError) {
  for (const char* text : {"// dmlint: ledger\nint x;\n",
                           "// dmlint: ledger()\nint x;\n",
                           "// dmlint: ledger(a, b)\nint x;\n"}) {
    const auto parsed = parse(text);
    EXPECT_TRUE(parsed.annotations.empty()) << text;
    ASSERT_EQ(parsed.errors.size(), 1u) << text;
    EXPECT_EQ(parsed.errors[0].rule, kRuleDirective);
  }
}

TEST(LintAnnotations, GuardedByWithoutMutexIsADirectiveError) {
  const auto parsed = parse("// dmlint: guarded-by\nint x;\n");
  ASSERT_EQ(parsed.errors.size(), 1u);
  EXPECT_EQ(parsed.errors[0].rule, kRuleDirective);
  EXPECT_NE(parsed.errors[0].message.find("guarded-by"), std::string::npos);
  EXPECT_NE(parsed.errors[0].message.find("mutex"), std::string::npos);
}

TEST(LintAnnotations, BareAllowIsASuppressionReasonError) {
  const auto parsed = parse("// dmlint: allow(guarded-by)\nint x;\n");
  EXPECT_TRUE(parsed.annotations.empty());
  ASSERT_EQ(parsed.errors.size(), 1u);
  EXPECT_EQ(parsed.errors[0].rule, kRuleSuppressionReason);
}

TEST(LintAnnotations, UnknownKeywordIsADirectiveError) {
  const auto parsed = parse("// dmlint: frobnicate\nint x;\n");
  ASSERT_EQ(parsed.errors.size(), 1u);
  EXPECT_EQ(parsed.errors[0].rule, kRuleDirective);
  EXPECT_NE(parsed.errors[0].message.find("frobnicate"), std::string::npos);
}

TEST(LintAnnotations, NonDmlintCommentsAreIgnored) {
  const auto parsed = parse(
      "// plain comment\n"
      "/* dm lint: not ours */\n"
      "int x;  // trailing prose about dmlint grammar, no colon prefix\n");
  EXPECT_TRUE(parsed.annotations.empty());
  EXPECT_TRUE(parsed.errors.empty());
}

}  // namespace
}  // namespace dm::lint
