// Fixture: nondeterministic-call fires on a CRT rand() call.
#include <cstdlib>

int roll_die() { return std::rand() % 6; }
