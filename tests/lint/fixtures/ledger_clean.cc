// ledger-conservation clean: every mutator touches the whole group, and
// the recomputed total reads every member.
struct Book {
  // dmlint: ledger(flows)
  unsigned long long offered = 0;
  // dmlint: ledger(flows)
  unsigned long long dropped = 0;
};

void admit(Book& b) {
  ++b.offered;
  b.dropped += 0;
}

// dmlint: ledger-total(flows)
unsigned long long conserved(const Book& b) {
  return b.offered + b.dropped;
}
