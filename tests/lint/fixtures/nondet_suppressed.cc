// Fixture: a justified allow() silences nondeterministic-call.
#include <cstdlib>

int roll_die() {
  // dmlint: allow(nondeterministic-call) fixture exercising suppression
  return std::rand() % 6;
}
