// Fixture: the one real determinism hazard of reused SoA scratch — keying
// results by the scratch block's ADDRESS. The same heap slot is refilled
// every call, so pointer identity says nothing about content, and iteration
// order over a pointer-keyed map varies run to run. pointer-keyed-container
// must fire.
#include <cstddef>
#include <cstdint>
#include <map>

struct Block {
  static constexpr std::size_t kCapacity = 64;
  std::uint32_t remote[kCapacity];
  std::size_t count = 0;
};

std::map<const Block*, std::uint64_t> g_totals_by_block;
