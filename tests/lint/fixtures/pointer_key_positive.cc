// Fixture: pointer-keyed-container fires on a pointer-keyed map.
#include <map>

struct Session {
  int id = 0;
};

std::map<Session*, int> g_hits_by_session;
