// unchecked-failable positive: a must-use report type whose producer has
// no [[nodiscard]] declaration anywhere, plus a call site that throws the
// result away as a bare expression statement.
struct ProbeReport {
  // dmlint: must-use
  int failures = 0;
};

ProbeReport probe_store();

void tick() {
  probe_store();
}
