// Fixture: unordered-iteration fires on range-for and .begin() iteration.
#include <numeric>
#include <unordered_set>

int sum(const std::unordered_set<int>& values) {
  int total = 0;
  for (const int v : values) total += v;
  return total;
}

int sum_accumulate(const std::unordered_set<int>& values) {
  return std::accumulate(values.begin(), values.end(), 0);
}
