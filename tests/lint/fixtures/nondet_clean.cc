// Fixture: seeded, caller-provided randomness is fine; so are identifiers
// that merely resemble banned names.
struct Rng {
  unsigned state;
  unsigned next() { return state = state * 1664525u + 1013904223u; }
};

int roll_die(Rng& rng) { return static_cast<int>(rng.next() % 6u); }

// Member access named like a banned function never fires.
struct Timer {
  int time_ = 0;
  int time() const { return time_; }
};
int read_timer(const Timer& t) { return t.time(); }
