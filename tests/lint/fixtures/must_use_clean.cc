// unchecked-failable clean: [[nodiscard]] producer and every call site
// binds or consumes the report.
struct ProbeReport {
  // dmlint: must-use
  int failures = 0;
};

[[nodiscard]] ProbeReport probe_store();

int tick() {
  const ProbeReport report = probe_store();
  return report.failures + probe_store().failures;
}
