// Fixture: canonical comparator shapes — std::tie keys, key projections,
// named comparators, and comparator-less sorts — all pass.
#include <algorithm>
#include <tuple>
#include <vector>

struct Episode {
  int start = 0;
  int length = 0;
};

bool by_start_then_length(const Episode& a, const Episode& b) {
  return std::tie(a.start, a.length) < std::tie(b.start, b.length);
}

void order(std::vector<Episode>& episodes) {
  std::sort(episodes.begin(), episodes.end(),
            [](const Episode& a, const Episode& b) {
              return std::tie(a.start, a.length) < std::tie(b.start, b.length);
            });
  std::sort(episodes.begin(), episodes.end(), by_start_then_length);
}

int key(const Episode& e) { return e.start * 1000 + e.length; }

void order_by_projection(std::vector<Episode>& episodes) {
  std::sort(episodes.begin(), episodes.end(),
            [](const Episode& a, const Episode& b) { return key(a) < key(b); });
}

void order_values(std::vector<int>& values) {
  std::sort(values.begin(), values.end());
}
