// Fixture: checkpoint-coverage fires when a serialize region skips a
// declared field (save() forgets `b`).
struct Rec {
  // dmlint: checkpointed
  int a = 0;
  int b = 0;
};

void save(const Rec& r, int* out) {
  // dmlint: covers(r, Rec)
  out[0] = r.a;
  // dmlint: covers-end(r)
}

void load(Rec& r, const int* in) {
  // dmlint: covers(r, Rec)
  r.a = in[0];
  r.b = in[1];
  // dmlint: covers-end(r)
}
