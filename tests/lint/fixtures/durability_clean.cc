// durability-order clean: full temp + fsync + atomic rename protocol —
// staged file synced before its rename, directory synced after the commit.
void fsync_path(const char* p);
void fsync_dir(const char* p);
void write_file(const char* p);
void rename(const char* from, const char* to);

void commit(const char* part, const char* final_name, const char* dir) {
  // dmlint: durable-commit
  write_file(part);
  fsync_path(part);
  rename(part, final_name);
  fsync_dir(dir);
  // dmlint: durable-commit-end
}
