// Fixture: an own-line allow() on the line above silences the iteration.
#include <unordered_set>

int sum(const std::unordered_set<int>& values) {
  int total = 0;
  // dmlint: allow(unordered-iteration) integer addition is commutative; order cannot matter
  for (const int v : values) total += v;
  return total;
}
