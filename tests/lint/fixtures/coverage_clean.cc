// Fixture: complete covers regions on both the save and load paths pass,
// and member functions in the struct are not mistaken for fields.
struct Rec {
  // dmlint: checkpointed
  int a = 0;
  int b = 0;
  int sum() const { return a + b; }
};

void save(const Rec& r, int* out) {
  // dmlint: covers(r, Rec)
  out[0] = r.a;
  out[1] = r.b;
  // dmlint: covers-end(r)
}

void load(Rec& r, const int* in) {
  // dmlint: covers(r, Rec)
  r.a = in[0];
  r.b = in[1];
  // dmlint: covers-end(r)
}
