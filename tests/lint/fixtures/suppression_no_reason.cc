// Fixture: an allow() with no justification is itself a finding and does
// NOT suppress the underlying violation.
#include <cstdlib>

int roll_die() {
  // dmlint: allow(nondeterministic-call)
  return std::rand() % 6;
}
