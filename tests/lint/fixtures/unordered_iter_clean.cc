// Fixture: point lookups into an unordered container are fine; iterating
// an ORDERED container is fine.
#include <set>
#include <unordered_set>

bool contains(const std::unordered_set<int>& values, int x) {
  return values.count(x) > 0;
}

// Distinct name from the unordered parameter above: the rule tracks names
// per file, so reusing `values` for an ordered container would still flag.
int sum(const std::set<int>& ordered) {
  int total = 0;
  for (const int v : ordered) total += v;
  return total;
}
