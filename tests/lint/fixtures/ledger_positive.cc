// ledger-conservation positive: admit() bumps one side of the ledger and
// forgets the other, so the group's conservation identity drifts.
struct Book {
  // dmlint: ledger(flows)
  unsigned long long offered = 0;
  // dmlint: ledger(flows)
  unsigned long long dropped = 0;
};

void admit(Book& b) {
  ++b.offered;
}
