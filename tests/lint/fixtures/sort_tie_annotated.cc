// Fixture: a total-order annotation accepts a single-key lambda compare.
#include <algorithm>
#include <vector>

struct Episode {
  int start = 0;  // unique by construction in this fixture
  int length = 0;
};

void order(std::vector<Episode>& episodes) {
  // dmlint: total-order(start minutes are unique per series)
  std::sort(episodes.begin(), episodes.end(),
            [](const Episode& a, const Episode& b) { return a.start < b.start; });
}
