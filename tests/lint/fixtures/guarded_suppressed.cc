// guarded-by suppressed: the unlocked read carries a justified allow().
struct Mutex {
  void lock();
  void unlock();
};

class Queue {
 public:
  int size();

 private:
  Mutex mu_;
  // dmlint: guarded-by(mu_)
  int depth_ = 0;
};

int Queue::size() {
  // dmlint: allow(guarded-by) monotonic hint read; staleness is benign
  return depth_;
}
