// durability-order suppressed: the unsynced rename carries a justified
// allow(), so it lands in the suppressed list instead of the findings.
void fsync_path(const char* p);
void fsync_dir(const char* p);
void write_file(const char* p);
void rename(const char* from, const char* to);

void commit(const char* part, const char* final_name, const char* dir) {
  // dmlint: durable-commit
  write_file(part);
  // dmlint: allow(durability-order) caller fsyncs the staged file batch-wise
  rename(part, final_name);
  fsync_dir(dir);
  // dmlint: durable-commit-end
}
