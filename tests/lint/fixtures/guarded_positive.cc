// guarded-by positive: depth_ is declared mutex-guarded but size() reads
// it without taking the lock.
struct Mutex {
  void lock();
  void unlock();
};

class Queue {
 public:
  int size();

 private:
  Mutex mu_;
  // dmlint: guarded-by(mu_)
  int depth_ = 0;
};

int Queue::size() {
  return depth_;
}
