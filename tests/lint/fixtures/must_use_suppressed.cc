// unchecked-failable suppressed: the discard carries a justified allow().
struct ProbeReport {
  // dmlint: must-use
  int failures = 0;
};

[[nodiscard]] ProbeReport probe_store();

void tick() {
  // dmlint: allow(unchecked-failable) best-effort warmup; failures recount
  probe_store();
}
