// Fixture: value keys are fine; pointer VALUES (not keys) are fine too.
#include <map>

struct Session {
  int id = 0;
};

std::map<int, Session*> g_session_by_id;
