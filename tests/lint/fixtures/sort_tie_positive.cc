// Fixture: sort-tie-break fires on a lambda comparing one member of a
// multi-field struct with no visible tie-breaker.
#include <algorithm>
#include <vector>

struct Episode {
  int start = 0;
  int length = 0;
};

void order(std::vector<Episode>& episodes) {
  std::sort(episodes.begin(), episodes.end(),
            [](const Episode& a, const Episode& b) { return a.start < b.start; });
}
