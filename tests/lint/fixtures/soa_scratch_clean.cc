// Fixture: the block pipeline's SoA scratch-buffer reuse pattern — a
// caller-owned struct-of-arrays block refilled in place by every next()
// call, with consumers indexing only rows [0, count). Stale rows from the
// previous fill are present in memory but never read; none of the
// determinism rules should fire on this shape.
#include <cstddef>
#include <cstdint>

struct Block {
  static constexpr std::size_t kCapacity = 64;
  std::uint32_t remote[kCapacity];
  std::uint64_t bytes[kCapacity];
  std::size_t count = 0;
};

struct Source {
  std::size_t next_index = 0;
  std::size_t limit = 0;

  // Overwrites every field of rows [0, count) — reuse leaks nothing.
  bool next(Block& out) {
    out.count = 0;
    while (out.count < Block::kCapacity && next_index < limit) {
      out.remote[out.count] = static_cast<std::uint32_t>(next_index);
      out.bytes[out.count] = next_index * 40;
      ++out.count;
      ++next_index;
    }
    return out.count != 0;
  }
};

std::uint64_t drain(Source& source) {
  Block block;  // reused scratch: each next() refills it in place
  std::uint64_t total = 0;
  while (source.next(block)) {
    for (std::size_t i = 0; i < block.count; ++i) total += block.bytes[i];
  }
  return total;
}
