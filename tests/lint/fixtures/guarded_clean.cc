// guarded-by clean: every touch of depth_ happens under a visible lock of
// mu_ — a lock_guard in size(), an explicit lock()/unlock() pair in push().
struct Mutex {
  void lock();
  void unlock();
};

class Queue {
 public:
  int size();
  void push(int v);

 private:
  Mutex mu_;
  // dmlint: guarded-by(mu_)
  int depth_ = 0;
};

int Queue::size() {
  const std::lock_guard<Mutex> guard(mu_);
  return depth_;
}

void Queue::push(int v) {
  mu_.lock();
  depth_ += v;
  mu_.unlock();
}
