// ledger-conservation suppressed: the lone mutation carries a justified
// allow().
struct Book {
  // dmlint: ledger(flows)
  unsigned long long offered = 0;
  // dmlint: ledger(flows)
  unsigned long long dropped = 0;
};

void admit(Book& b) {
  // dmlint: allow(ledger-conservation) drops are folded in by the caller
  ++b.offered;
}
