#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/token.h"

namespace dm::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(DM_SOURCE_ROOT) + "/tests/lint/fixtures/" + name;
}

LintReport lint_fixture(const std::string& name) {
  return run_lint({SourceFile{name, read_file(fixture_path(name))}});
}

LintReport lint_text(const std::string& text) {
  return run_lint({SourceFile{"inline.cc", text}});
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&rule](const Finding& f) { return f.rule == rule; }));
}

// --- tokenizer ------------------------------------------------------------

TEST(LintTokenizer, StringsNeverLeakIdentifiers) {
  const auto ts = tokenize("const char* s = \"std::rand() // not code\";");
  for (const Token& t : ts.tokens) {
    EXPECT_NE(t.text, "rand");
  }
  EXPECT_TRUE(ts.comments.empty());
}

TEST(LintTokenizer, CommentsCarryPlacement) {
  const auto ts = tokenize("int a;  // trailing\n// own line\nint b;\n");
  ASSERT_EQ(ts.comments.size(), 2u);
  EXPECT_FALSE(ts.comments[0].own_line);
  EXPECT_EQ(ts.comments[0].line, 1);
  EXPECT_TRUE(ts.comments[1].own_line);
  EXPECT_EQ(ts.comments[1].line, 2);
}

TEST(LintTokenizer, RawStringsAndBlockCommentsTrackLines) {
  const auto ts = tokenize("auto s = R\"(line1\nline2)\";\n/* block\nstill */\nint x;\n");
  ASSERT_FALSE(ts.tokens.empty());
  EXPECT_EQ(ts.tokens.back().text, ";");
  EXPECT_EQ(ts.tokens.back().line, 5);
  ASSERT_EQ(ts.comments.size(), 1u);
  EXPECT_EQ(ts.comments[0].line, 3);
}

// --- rule fixtures: positive / suppressed / clean -------------------------

TEST(LintRules, NondetPositive) {
  const auto report = lint_fixture("nondet_positive.cc");
  EXPECT_EQ(count_rule(report.findings, kRuleNondetCall), 1u);
  EXPECT_EQ(report.findings.size(), 1u);
}

TEST(LintRules, NondetSuppressed) {
  const auto report = lint_fixture("nondet_suppressed.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(count_rule(report.suppressed, kRuleNondetCall), 1u);
}

TEST(LintRules, NondetClean) {
  const auto report = lint_fixture("nondet_clean.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.suppressed.empty());
}

TEST(LintRules, PointerKeyPositive) {
  const auto report = lint_fixture("pointer_key_positive.cc");
  EXPECT_EQ(count_rule(report.findings, kRulePointerKey), 1u);
  EXPECT_EQ(report.findings.size(), 1u);
}

TEST(LintRules, PointerKeyClean) {
  const auto report = lint_fixture("pointer_key_clean.cc");
  EXPECT_TRUE(report.findings.empty());
}

TEST(LintRules, UnorderedIterPositive) {
  const auto report = lint_fixture("unordered_iter_positive.cc");
  // Range-for plus the .begin() and .end() calls in std::accumulate.
  EXPECT_EQ(count_rule(report.findings, kRuleUnorderedIter), 3u);
}

TEST(LintRules, UnorderedIterSuppressed) {
  const auto report = lint_fixture("unordered_iter_suppressed.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(count_rule(report.suppressed, kRuleUnorderedIter), 1u);
}

TEST(LintRules, UnorderedIterClean) {
  const auto report = lint_fixture("unordered_iter_clean.cc");
  EXPECT_TRUE(report.findings.empty());
}

TEST(LintRules, SortTiePositive) {
  const auto report = lint_fixture("sort_tie_positive.cc");
  EXPECT_EQ(count_rule(report.findings, kRuleSortTieBreak), 1u);
  EXPECT_EQ(report.findings.size(), 1u);
}

TEST(LintRules, SortTieAnnotated) {
  const auto report = lint_fixture("sort_tie_annotated.cc");
  EXPECT_TRUE(report.findings.empty());
}

TEST(LintRules, SortTieClean) {
  const auto report = lint_fixture("sort_tie_clean.cc");
  EXPECT_TRUE(report.findings.empty());
}

TEST(LintRules, SoaScratchCleanReuseIsNotAFinding) {
  // The block decode pipeline refills one caller-owned SoA scratch block per
  // next() call (DESIGN.md §5g). The reuse pattern itself is deterministic —
  // every consumed row is overwritten first — and must lint clean.
  const auto report = lint_fixture("soa_scratch_clean.cc");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.suppressed.empty());
}

TEST(LintRules, SoaScratchPointerKeyedResultsStillFire) {
  // The actual hazard of reused scratch: keying anything by the block's
  // address. Same slot, different contents every call.
  const auto report = lint_fixture("soa_scratch_positive.cc");
  EXPECT_EQ(count_rule(report.findings, kRulePointerKey), 1u);
  EXPECT_EQ(report.findings.size(), 1u);
}

TEST(LintRules, CoveragePositive) {
  const auto report = lint_fixture("coverage_positive.cc");
  ASSERT_EQ(count_rule(report.findings, kRuleCheckpointCoverage), 1u);
  EXPECT_NE(report.findings[0].message.find("b"), std::string::npos);
}

TEST(LintRules, CoverageClean) {
  const auto report = lint_fixture("coverage_clean.cc");
  EXPECT_TRUE(report.findings.empty());
}

// --- suppression policy ---------------------------------------------------

TEST(LintSuppression, BareAllowIsRejectedAndSuppressesNothing) {
  const auto report = lint_fixture("suppression_no_reason.cc");
  EXPECT_EQ(count_rule(report.findings, kRuleSuppressionReason), 1u);
  EXPECT_EQ(count_rule(report.findings, kRuleNondetCall), 1u);
  EXPECT_TRUE(report.suppressed.empty());
}

TEST(LintSuppression, UnknownRuleNameIsADirectiveFinding) {
  const auto report = lint_text(
      "// dmlint: allow(no-such-rule) because reasons\nint x = 0;\n");
  EXPECT_EQ(count_rule(report.findings, kRuleDirective), 1u);
}

TEST(LintSuppression, UnknownKeywordIsADirectiveFinding) {
  const auto report = lint_text("// dmlint: frobnicate everything\nint x;\n");
  EXPECT_EQ(count_rule(report.findings, kRuleDirective), 1u);
}

TEST(LintSuppression, CoversWithoutEndIsADirectiveFinding) {
  const auto report = lint_text(
      "struct R { int a = 0; };\n"
      "void f(const R& r, int* o) {\n"
      "  // dmlint: covers(r, R)\n"
      "  o[0] = r.a;\n"
      "}\n");
  EXPECT_EQ(count_rule(report.findings, kRuleDirective), 1u);
}

TEST(LintSuppression, CheckpointedNeedsTwoRegions) {
  const auto report = lint_text(
      "struct R {\n"
      "  // dmlint: checkpointed\n"
      "  int a = 0;\n"
      "};\n"
      "void save(const R& r, int* o) {\n"
      "  // dmlint: covers(r, R)\n"
      "  o[0] = r.a;\n"
      "  // dmlint: covers-end(r)\n"
      "}\n");
  EXPECT_EQ(count_rule(report.findings, kRuleCheckpointCoverage), 1u);
}

TEST(LintSuppression, StaleCoversFieldIsAFinding) {
  const auto report = lint_text(
      "struct R { int a = 0; };\n"
      "void f(const R& r, int* o) {\n"
      "  // dmlint: covers(r, R)\n"
      "  o[0] = r.a;\n"
      "  o[1] = r.gone;\n"
      "  // dmlint: covers-end(r)\n"
      "}\n");
  ASSERT_EQ(count_rule(report.findings, kRuleCheckpointCoverage), 1u);
  EXPECT_NE(report.findings[0].message.find("gone"), std::string::npos);
}

// --- fingerprints ---------------------------------------------------------

TEST(LintFingerprint, StableAndOrdinalDistinguished) {
  const Finding f{"a.cpp", 10, kRuleNondetCall, "msg"};
  EXPECT_EQ(fingerprint(f, 0), fingerprint(f, 0));
  EXPECT_NE(fingerprint(f, 0), fingerprint(f, 1));
  Finding moved = f;
  moved.line = 99;  // line drift must not change the identity
  EXPECT_EQ(fingerprint(f, 0), fingerprint(moved, 0));
}

// --- repository self-scan -------------------------------------------------

TEST(LintSelfScan, RepositoryIsCleanWithEmptyBaseline) {
  const auto files = load_tree(DM_SOURCE_ROOT, {"src", "tools"});
  ASSERT_GT(files.size(), 50u);
  const auto report = run_lint(files);
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
  // Every suppression in the repo carries a reason (a bare allow would have
  // surfaced as a suppression-reason finding above).
  EXPECT_FALSE(report.suppressed.empty());
}

TEST(LintSelfScan, DeletingASerializedFieldFailsFieldCoverage) {
  auto files = load_tree(DM_SOURCE_ROOT, {"src", "tools"});
  auto it = std::find_if(files.begin(), files.end(), [](const SourceFile& f) {
    return f.path == "src/detect/stream.cpp";
  });
  ASSERT_NE(it, files.end());
  const std::string needle = "put_u64(payload, w.flows);";
  const std::size_t pos = it->text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  it->text.replace(pos, needle.size(), "");
  const auto report = run_lint(files);
  const auto hit = std::find_if(
      report.findings.begin(), report.findings.end(), [](const Finding& f) {
        return f.rule == kRuleCheckpointCoverage &&
               f.file == "src/detect/stream.cpp" &&
               f.message.find("flows") != std::string::npos;
      });
  EXPECT_NE(hit, report.findings.end())
      << "removing a serialized field must fail the coverage rule";
}

}  // namespace
}  // namespace dm::lint
