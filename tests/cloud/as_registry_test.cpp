#include "cloud/as_registry.h"

#include <gtest/gtest.h>

#include <set>

namespace dm::cloud {
namespace {

AsRegistryConfig small_config() {
  AsRegistryConfig config;
  config.big_cloud = 3;
  config.small_cloud = 12;
  config.mobile = 8;
  config.large_isp = 8;
  config.small_isp = 40;
  config.customer = 60;
  config.edu = 10;
  config.ixp = 5;
  config.nic = 4;
  return config;
}

TEST(AsRegistry, BuildsAllClasses) {
  const AsRegistry registry(small_config(), 1);
  EXPECT_EQ(registry.size(), 3u + 12 + 8 + 8 + 40 + 60 + 10 + 5 + 4);
  EXPECT_EQ(registry.by_class(AsClass::kBigCloud).size(), 3u);
  EXPECT_EQ(registry.by_class(AsClass::kSmallIsp).size(), 40u);
  EXPECT_EQ(registry.by_class(AsClass::kNic).size(), 4u);
}

TEST(AsRegistry, PrefixesAreDisjoint) {
  const AsRegistry registry(small_config(), 2);
  // Sample hosts of every AS and verify lookup maps back to the owner.
  util::Rng rng(3);
  for (const AsInfo& as : registry.all()) {
    for (int i = 0; i < 4; ++i) {
      const auto host = registry.host_in(as, rng);
      EXPECT_TRUE(as.prefix.contains(host));
      const AsInfo* found = registry.lookup(host);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found->asn, as.asn);
    }
  }
}

TEST(AsRegistry, AsnsAreUnique) {
  const AsRegistry registry(small_config(), 4);
  std::set<std::uint32_t> asns;
  for (const AsInfo& as : registry.all()) {
    EXPECT_TRUE(asns.insert(as.asn).second);
  }
}

TEST(AsRegistry, CloudSpaceIsNotAllocated) {
  const AsRegistry registry(small_config(), 5);
  // The cloud's 100.64.0.0/12 must not resolve to any synthetic AS.
  EXPECT_EQ(registry.lookup(netflow::IPv4::from_octets(100, 64, 0, 1)), nullptr);
  EXPECT_EQ(registry.lookup(netflow::IPv4::from_octets(100, 79, 255, 254)),
            nullptr);
}

TEST(AsRegistry, SpecialHubsArePinned) {
  const AsRegistry registry(small_config(), 6);
  EXPECT_EQ(registry.spain_hub().region, GeoRegion::kSpain);
  EXPECT_TRUE(registry.spain_hub().attack_hub);
  EXPECT_EQ(registry.singapore_spam_cloud().region, GeoRegion::kSoutheastAsia);
  EXPECT_TRUE(registry.singapore_spam_cloud().spam_hub);
  EXPECT_EQ(registry.singapore_spam_cloud().cls, AsClass::kBigCloud);
  EXPECT_EQ(registry.france_dns_target().region, GeoRegion::kFrance);
  EXPECT_EQ(registry.romania_victim_cloud().region, GeoRegion::kRomania);
  EXPECT_EQ(registry.romania_victim_cloud().cls, AsClass::kSmallCloud);
}

TEST(AsRegistry, HostInClassReturnsMember) {
  const AsRegistry registry(small_config(), 7);
  util::Rng rng(8);
  for (AsClass cls : kAllAsClasses) {
    const AsInfo* chosen = nullptr;
    const auto host = registry.host_in_class(cls, rng, &chosen);
    ASSERT_NE(chosen, nullptr);
    EXPECT_EQ(chosen->cls, cls);
    EXPECT_TRUE(chosen->prefix.contains(host));
  }
}

TEST(AsRegistry, SpoofedAddressesCoverTheSpace) {
  util::Rng rng(9);
  std::uint32_t min = 0xffffffffu;
  std::uint32_t max = 0;
  for (int i = 0; i < 10'000; ++i) {
    const auto ip = AsRegistry::spoofed_address(rng);
    min = std::min(min, ip.value());
    max = std::max(max, ip.value());
  }
  EXPECT_LT(min, 0x10000000u);
  EXPECT_GT(max, 0xf0000000u);
}

TEST(AsRegistry, DeterministicForSeed) {
  const AsRegistry a(small_config(), 42);
  const AsRegistry b(small_config(), 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.all()[i].prefix, b.all()[i].prefix);
    EXPECT_EQ(a.all()[i].region, b.all()[i].region);
  }
}

TEST(AsRegistry, ClassStrings) {
  EXPECT_EQ(to_string(AsClass::kBigCloud), "BigCloud");
  EXPECT_EQ(to_string(AsClass::kNic), "NIC");
  EXPECT_EQ(to_string(GeoRegion::kSpain), "Spain");
  EXPECT_EQ(to_string(GeoRegion::kSoutheastAsia), "SE-Asia");
}

}  // namespace
}  // namespace dm::cloud
