#include "cloud/service.h"

#include <gtest/gtest.h>

namespace dm::cloud {
namespace {

TEST(Service, ProfilesAreSelfConsistent) {
  for (ServiceType s : kAllServiceTypes) {
    const ServiceProfile& p = profile_of(s);
    EXPECT_EQ(p.type, s) << to_string(s);
    EXPECT_GT(p.base_packets_per_minute, 0.0);
    EXPECT_GT(p.base_clients_per_minute, 0.0);
    EXPECT_GT(p.mean_packet_bytes, 0.0);
    EXPECT_GE(p.port_count, 1);
    EXPECT_LE(p.port_count, 2);
  }
}

TEST(Service, WebDominatesTraffic) {
  // §4.4: web services carry 99% of cloud traffic — HTTP must outweigh the
  // admin services by orders of magnitude.
  EXPECT_GT(profile_of(ServiceType::kHttp).base_packets_per_minute,
            50 * profile_of(ServiceType::kSsh).base_packets_per_minute);
}

TEST(Service, PortReverseMapping) {
  namespace ports = netflow::ports;
  bool known = false;
  EXPECT_EQ(service_for_port(netflow::Protocol::kTcp, ports::kHttp, &known),
            ServiceType::kHttp);
  EXPECT_TRUE(known);
  EXPECT_EQ(service_for_port(netflow::Protocol::kTcp, ports::kHttpAlt),
            ServiceType::kHttp);
  EXPECT_EQ(service_for_port(netflow::Protocol::kTcp, ports::kHttps),
            ServiceType::kHttps);
  EXPECT_EQ(service_for_port(netflow::Protocol::kTcp, ports::kRdp),
            ServiceType::kRdp);
  EXPECT_EQ(service_for_port(netflow::Protocol::kTcp, ports::kSsh),
            ServiceType::kSsh);
  EXPECT_EQ(service_for_port(netflow::Protocol::kTcp, ports::kVnc),
            ServiceType::kVnc);
  EXPECT_EQ(service_for_port(netflow::Protocol::kTcp, ports::kSqlServer),
            ServiceType::kSql);
  EXPECT_EQ(service_for_port(netflow::Protocol::kTcp, ports::kMySql),
            ServiceType::kSql);
  EXPECT_EQ(service_for_port(netflow::Protocol::kTcp, ports::kSmtp),
            ServiceType::kSmtp);
  EXPECT_EQ(service_for_port(netflow::Protocol::kUdp, ports::kDns),
            ServiceType::kDns);
  EXPECT_EQ(service_for_port(netflow::Protocol::kUdp, 1935),
            ServiceType::kMedia);
  EXPECT_EQ(service_for_port(netflow::Protocol::kIpEncap, 0),
            ServiceType::kIpEncap);
}

TEST(Service, UnknownPortsReported) {
  bool known = true;
  (void)service_for_port(netflow::Protocol::kTcp, 9999, &known);
  EXPECT_FALSE(known);
  known = true;
  (void)service_for_port(netflow::Protocol::kUdp, 31337, &known);
  EXPECT_FALSE(known);
}

TEST(Service, EveryProfilePortMapsBack) {
  // The Table 3 inference must recognize every port a profile listens on.
  for (ServiceType s : kAllServiceTypes) {
    const ServiceProfile& p = profile_of(s);
    for (int i = 0; i < p.port_count; ++i) {
      bool known = false;
      const ServiceType mapped =
          service_for_port(p.protocol, p.ports[i], &known);
      EXPECT_TRUE(known) << to_string(s) << " port " << p.ports[i];
      EXPECT_EQ(mapped, s) << to_string(s) << " port " << p.ports[i];
    }
  }
}

TEST(Service, PortPredicates) {
  namespace ports = netflow::ports;
  EXPECT_TRUE(ports::is_sql(1433));
  EXPECT_TRUE(ports::is_sql(3306));
  EXPECT_FALSE(ports::is_sql(80));
  EXPECT_TRUE(ports::is_remote_admin(22));
  EXPECT_TRUE(ports::is_remote_admin(3389));
  EXPECT_TRUE(ports::is_remote_admin(5900));
  EXPECT_FALSE(ports::is_remote_admin(25));
  EXPECT_TRUE(ports::is_web(80));
  EXPECT_TRUE(ports::is_web(8080));
  EXPECT_TRUE(ports::is_web(443));
  EXPECT_FALSE(ports::is_web(22));
}

}  // namespace
}  // namespace dm::cloud
