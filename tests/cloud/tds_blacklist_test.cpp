#include "cloud/tds_blacklist.h"

#include <gtest/gtest.h>

namespace dm::cloud {
namespace {

AsRegistryConfig as_config() {
  AsRegistryConfig config;
  config.small_isp = 30;
  config.customer = 40;
  config.small_cloud = 10;
  return config;
}

TEST(TdsBlacklist, MembershipAndSampling) {
  const AsRegistry ases(as_config(), 1);
  TdsBlacklistConfig config;
  config.host_count = 500;
  const TdsBlacklist tds(config, ases, 1);

  EXPECT_GT(tds.hosts().size(), 400u);  // minor dedup shrinkage allowed
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(tds.contains(tds.random_host(rng)));
  }
}

TEST(TdsBlacklist, NonMembersRejected) {
  const AsRegistry ases(as_config(), 2);
  TdsBlacklistConfig config;
  config.host_count = 100;
  const TdsBlacklist tds(config, ases, 2);
  // Cloud addresses are never TDS hosts.
  EXPECT_FALSE(tds.contains(netflow::IPv4::from_octets(100, 64, 1, 1)));
}

TEST(TdsBlacklist, HostsLiveInKnownAses) {
  const AsRegistry ases(as_config(), 3);
  TdsBlacklistConfig config;
  config.host_count = 300;
  const TdsBlacklist tds(config, ases, 3);
  for (const auto host : tds.hosts()) {
    const AsInfo* as = ases.lookup(host);
    ASSERT_NE(as, nullptr);
    EXPECT_TRUE(as->cls == AsClass::kSmallCloud || as->cls == AsClass::kCustomer ||
                as->cls == AsClass::kSmallIsp || as->cls == AsClass::kBigCloud);
  }
}

TEST(TdsBlacklist, BigCloudHostsAlwaysAvailable) {
  const AsRegistry ases(as_config(), 4);
  TdsBlacklistConfig config;
  config.host_count = 50;
  config.big_cloud_fraction = 0.0;  // none by chance...
  const TdsBlacklist tds(config, ases, 4);
  util::Rng rng(5);
  const auto host = tds.random_big_cloud_host(rng);  // ...one is guaranteed
  const AsInfo* as = ases.lookup(host);
  ASSERT_NE(as, nullptr);
  EXPECT_EQ(as->cls, AsClass::kBigCloud);
}

TEST(TdsBlacklist, BigCloudFractionIsSmall) {
  // §6.1: big clouds hold only ~0.21% of TDS IPs.
  const AsRegistry ases(as_config(), 5);
  TdsBlacklistConfig config;
  config.host_count = 4000;
  const TdsBlacklist tds(config, ases, 5);
  std::size_t big = 0;
  for (const auto host : tds.hosts()) {
    if (ases.lookup(host)->cls == AsClass::kBigCloud) ++big;
  }
  EXPECT_LT(static_cast<double>(big) / static_cast<double>(tds.hosts().size()),
            0.02);
}

TEST(TdsBlacklist, TdsPortsInPaperRange) {
  util::Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const auto port = TdsBlacklist::random_tds_port(rng);
    EXPECT_GE(port, 1024);
    EXPECT_LE(port, 5000);
  }
}

TEST(TdsBlacklist, PrefixSetViewMatches) {
  const AsRegistry ases(as_config(), 7);
  TdsBlacklistConfig config;
  config.host_count = 200;
  const TdsBlacklist tds(config, ases, 7);
  for (const auto host : tds.hosts()) {
    EXPECT_TRUE(tds.as_prefix_set().contains(host));
  }
}

}  // namespace
}  // namespace dm::cloud
