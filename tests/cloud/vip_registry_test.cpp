#include "cloud/vip_registry.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"

namespace dm::cloud {
namespace {

VipRegistryConfig small_config() {
  VipRegistryConfig config;
  config.vip_count = 400;
  config.data_center_count = 5;
  config.trace_minutes = 2880;
  return config;
}

TEST(VipRegistry, BuildsRequestedPopulation) {
  const VipRegistry registry(small_config(), 1);
  EXPECT_EQ(registry.size(), 400u);
  EXPECT_EQ(registry.data_centers().size(), 5u);
}

TEST(VipRegistry, RejectsInvalidConfig) {
  VipRegistryConfig config;
  config.vip_count = 0;
  EXPECT_THROW(VipRegistry(config, 1), dm::ConfigError);
  config.vip_count = 10;
  config.data_center_count = 0;
  EXPECT_THROW(VipRegistry(config, 1), dm::ConfigError);
  config.data_center_count = 17;
  EXPECT_THROW(VipRegistry(config, 1), dm::ConfigError);
}

TEST(VipRegistry, VipsAreUniqueAndInCloudSpace) {
  const VipRegistry registry(small_config(), 2);
  std::set<std::uint32_t> seen;
  for (const VipInfo& v : registry.all()) {
    EXPECT_TRUE(seen.insert(v.vip.value()).second);
    EXPECT_TRUE(registry.cloud_space().contains(v.vip));
    EXPECT_FALSE(v.services.empty());
    EXPECT_GT(v.popularity, 0.0);
  }
}

TEST(VipRegistry, LookupRoundTrip) {
  const VipRegistry registry(small_config(), 3);
  for (const VipInfo& v : registry.all()) {
    const VipInfo* found = registry.lookup(v.vip);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->vip, v.vip);
  }
  EXPECT_EQ(registry.lookup(netflow::IPv4::from_octets(4, 4, 4, 4)), nullptr);
}

TEST(VipRegistry, ExactlyOneDnsVip) {
  const VipRegistry registry(small_config(), 4);
  EXPECT_EQ(registry.with_service(ServiceType::kDns).size(), 1u);
}

TEST(VipRegistry, TenantMixRoughlyMatchesConfig) {
  const VipRegistry registry(small_config(), 5);
  const auto trials = registry.with_tenant(TenantClass::kFreeTrial);
  const auto frac =
      static_cast<double>(trials.size()) / static_cast<double>(registry.size());
  EXPECT_NEAR(frac, 0.10, 0.05);
}

TEST(VipRegistry, DormantPartnerExistsForCaseStudy) {
  const auto config = small_config();
  const VipRegistry registry(config, 6);
  bool found = false;
  for (const VipInfo& v : registry.all()) {
    if (v.tenant == TenantClass::kPartner &&
        v.active_from >= config.trace_minutes) {
      EXPECT_TRUE(v.weak_credentials);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VipRegistry, ActiveWindowSemantics) {
  VipInfo v;
  v.active_from = 100;
  v.active_until = 0;  // until trace end
  EXPECT_FALSE(v.active_at(99, 1000));
  EXPECT_TRUE(v.active_at(100, 1000));
  EXPECT_TRUE(v.active_at(999, 1000));
  EXPECT_FALSE(v.active_at(1000, 1000));
  v.active_until = 500;
  EXPECT_TRUE(v.active_at(499, 1000));
  EXPECT_FALSE(v.active_at(500, 1000));
}

TEST(VipRegistry, ServiceMixHasTableThreeShape) {
  // RDP and HTTP should be the two most common services (Table 3 totals).
  const VipRegistry registry(small_config(), 7);
  const auto rdp = registry.with_service(ServiceType::kRdp).size();
  const auto http = registry.with_service(ServiceType::kHttp).size();
  const auto smtp = registry.with_service(ServiceType::kSmtp).size();
  EXPECT_GT(rdp, registry.size() / 5);
  EXPECT_GT(http, registry.size() / 5);
  EXPECT_LT(smtp, registry.size() / 8);
}

TEST(VipRegistry, DeterministicForSeed) {
  const VipRegistry a(small_config(), 42);
  const VipRegistry b(small_config(), 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.all()[i].vip, b.all()[i].vip);
    EXPECT_EQ(a.all()[i].tenant, b.all()[i].tenant);
    EXPECT_EQ(a.all()[i].services, b.all()[i].services);
  }
}

TEST(VipRegistry, DifferentSeedsDiffer) {
  const VipRegistry a(small_config(), 1);
  const VipRegistry b(small_config(), 2);
  std::size_t same_services = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.all()[i].services == b.all()[i].services) ++same_services;
  }
  EXPECT_LT(same_services, a.size());
}

}  // namespace
}  // namespace dm::cloud
