#include "analysis/signature.h"

#include <gtest/gtest.h>

namespace dm::analysis {
namespace {

using detect::AttackIncident;
using netflow::Direction;
using netflow::FlowRecord;
using netflow::IPv4;
using netflow::Protocol;
using netflow::TcpFlags;
using sim::AttackType;

const IPv4 kVip = IPv4::from_octets(100, 64, 0, 9);
const IPv4 kRepeat = IPv4::from_octets(4, 9, 9, 9);

netflow::PrefixSet cloud_space() {
  netflow::PrefixSet set;
  set.add(netflow::Prefix(IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

/// Two SYN-flood incidents; `kRepeat` participates in both, other sources
/// are one-off. Optionally all packets carry source port 1024.
struct Fixture {
  netflow::WindowedTrace trace;
  std::vector<AttackIncident> incidents;
};

Fixture make_fixture(bool juno) {
  std::vector<FlowRecord> records;
  auto syn = [&](util::Minute m, IPv4 src, std::uint32_t pkts,
                 std::uint16_t sport) {
    FlowRecord r;
    r.minute = m;
    r.src_ip = src;
    r.dst_ip = kVip;
    r.src_port = sport;
    r.dst_port = 80;
    r.protocol = Protocol::kTcp;
    r.tcp_flags = TcpFlags::kSyn;
    r.packets = pkts;
    r.bytes = pkts * 40;
    records.push_back(r);
  };
  for (int wave = 0; wave < 2; ++wave) {
    const util::Minute base = 100 + wave * 500;
    for (util::Minute m = base; m < base + 5; ++m) {
      syn(m, kRepeat, 40, juno ? 1024 : static_cast<std::uint16_t>(20'000 + m));
      for (std::uint32_t s = 0; s < 10; ++s) {
        syn(m, IPv4(0x05000000u + static_cast<std::uint32_t>(wave) * 100 + s), 5,
            juno ? 1024 : static_cast<std::uint16_t>(30'000 + s));
      }
    }
  }

  Fixture f{netflow::aggregate_windows(std::move(records), cloud_space()), {}};
  for (int wave = 0; wave < 2; ++wave) {
    AttackIncident inc;
    inc.vip = kVip;
    inc.direction = Direction::kInbound;
    inc.type = AttackType::kSynFlood;
    inc.start = 100 + wave * 500;
    inc.end = inc.start + 5;
    f.incidents.push_back(inc);
  }
  return f;
}

TEST(Signature, RepeatSourceBecomesBlockRule) {
  const Fixture f = make_fixture(false);
  const auto rules = extract_signatures(f.trace, f.incidents, kVip);
  const SignatureRule* block = nullptr;
  for (const auto& rule : rules) {
    if (rule.kind == SignatureRule::Kind::kBlockSource &&
        rule.source == kRepeat) {
      block = &rule;
    }
  }
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->incidents, 2u);
  // kRepeat carries 400 of 900 total attack packets (2 waves x 5 min x 40
  // pkts vs 2 x 10 sources x 5 min x 5 pkts).
  EXPECT_NEAR(block->packet_share, 400.0 / 900.0, 1e-9);
}

TEST(Signature, OneOffSourcesBelowThresholdIgnored) {
  const Fixture f = make_fixture(false);
  const auto rules = extract_signatures(f.trace, f.incidents, kVip);
  for (const auto& rule : rules) {
    if (rule.kind != SignatureRule::Kind::kBlockSource) continue;
    EXPECT_EQ(rule.source, kRepeat)
        << "one-off low-volume source " << rule.source.to_string();
  }
}

TEST(Signature, JunoFixedSourcePortDetected) {
  const Fixture f = make_fixture(true);
  const auto rules = extract_signatures(f.trace, f.incidents, kVip);
  bool port_rule = false;
  for (const auto& rule : rules) {
    if (rule.kind == SignatureRule::Kind::kBlockSourcePort) {
      EXPECT_EQ(rule.port, 1024);
      EXPECT_NEAR(rule.packet_share, 1.0, 1e-9);
      port_rule = true;
    }
  }
  EXPECT_TRUE(port_rule);
}

TEST(Signature, NoFixedPortRuleForEphemeralPorts) {
  const Fixture f = make_fixture(false);
  const auto rules = extract_signatures(f.trace, f.incidents, kVip);
  for (const auto& rule : rules) {
    EXPECT_NE(rule.kind, SignatureRule::Kind::kBlockSourcePort);
  }
}

TEST(Signature, RateLimitRuleOnRepeatedTargetPort) {
  const Fixture f = make_fixture(false);
  const auto rules = extract_signatures(f.trace, f.incidents, kVip);
  bool rate_rule = false;
  for (const auto& rule : rules) {
    if (rule.kind == SignatureRule::Kind::kRateLimitPort) {
      EXPECT_EQ(rule.port, 80);  // both floods targeted the web port
      EXPECT_EQ(rule.incidents, 2u);
      rate_rule = true;
    }
  }
  EXPECT_TRUE(rate_rule);
}

TEST(Signature, OtherVipsIgnored) {
  const Fixture f = make_fixture(false);
  const auto rules = extract_signatures(
      f.trace, f.incidents, IPv4::from_octets(100, 64, 0, 123));
  EXPECT_TRUE(rules.empty());
}

TEST(Signature, SourceRuleBudgetRespected) {
  const Fixture f = make_fixture(false);
  SignatureConfig config;
  config.min_incidents = 1;      // every source qualifies
  config.min_packet_share = 0.0;
  config.max_source_rules = 3;
  const auto rules = extract_signatures(f.trace, f.incidents, kVip, config);
  std::size_t block_rules = 0;
  for (const auto& rule : rules) {
    block_rules += rule.kind == SignatureRule::Kind::kBlockSource;
  }
  EXPECT_EQ(block_rules, 3u);
  // The budget keeps the heaviest source.
  EXPECT_EQ(rules[0].source, kRepeat);
}

TEST(Signature, ToStringMentionsEssentials) {
  SignatureRule rule;
  rule.kind = SignatureRule::Kind::kBlockSource;
  rule.source = kRepeat;
  rule.incidents = 2;
  rule.packet_share = 0.5;
  const std::string text = to_string(rule);
  EXPECT_NE(text.find("block src 4.9.9.9"), std::string::npos);
  EXPECT_NE(text.find("2 incidents"), std::string::npos);
  EXPECT_NE(text.find("50%"), std::string::npos);
}

}  // namespace
}  // namespace dm::analysis
