#include "analysis/vip_frequency.h"

#include <gtest/gtest.h>

namespace dm::analysis {
namespace {

using detect::AttackIncident;
using netflow::Direction;
using sim::AttackType;

AttackIncident incident(std::uint32_t vip, util::Minute start,
                        AttackType type = AttackType::kSynFlood,
                        Direction dir = Direction::kInbound) {
  AttackIncident inc;
  inc.vip = netflow::IPv4(vip);
  inc.type = type;
  inc.direction = dir;
  inc.start = start;
  inc.end = start + 5;
  return inc;
}

TEST(VipFrequency, CountsPerVipDay) {
  std::vector<AttackIncident> incidents{
      incident(1, 100), incident(1, 500), incident(1, 900),  // day 0: 3
      incident(1, 2000),                                     // day 1: 1
      incident(2, 100),                                      // day 0: 1
  };
  const auto freq = compute_vip_frequency(incidents, Direction::kInbound);
  EXPECT_EQ(freq.pairs.size(), 3u);
  EXPECT_DOUBLE_EQ(freq.single_attack_fraction, 2.0 / 3.0);
  EXPECT_EQ(freq.max_attacks_per_day, 3u);
  EXPECT_DOUBLE_EQ(freq.attacks_per_day.quantile(1.0), 3.0);
}

TEST(VipFrequency, FrequentThresholdSplit) {
  std::vector<AttackIncident> incidents;
  // VIP 1: 15 attacks in one day (frequent); VIP 2: 2 attacks (occasional).
  for (int i = 0; i < 15; ++i) {
    incidents.push_back(incident(1, i * 60, AttackType::kUdpFlood));
  }
  incidents.push_back(incident(2, 100, AttackType::kTds));
  incidents.push_back(incident(2, 700, AttackType::kTds));

  const auto freq = compute_vip_frequency(incidents, Direction::kInbound);
  EXPECT_DOUBLE_EQ(freq.frequent_fraction, 0.5);
  // Mixes are normalized by all inbound incidents (17).
  EXPECT_NEAR(freq.frequent_mix[sim::index_of(AttackType::kUdpFlood)],
              15.0 / 17.0, 1e-9);
  EXPECT_NEAR(freq.occasional_mix[sim::index_of(AttackType::kTds)], 2.0 / 17.0,
              1e-9);
  EXPECT_DOUBLE_EQ(freq.frequent_mix[sim::index_of(AttackType::kTds)], 0.0);
}

TEST(VipFrequency, DirectionFilter) {
  std::vector<AttackIncident> incidents{
      incident(1, 100, AttackType::kSynFlood, Direction::kInbound),
      incident(1, 100, AttackType::kSynFlood, Direction::kOutbound),
  };
  const auto in = compute_vip_frequency(incidents, Direction::kInbound);
  const auto out = compute_vip_frequency(incidents, Direction::kOutbound);
  EXPECT_EQ(in.pairs.size(), 1u);
  EXPECT_EQ(out.pairs.size(), 1u);
}

TEST(VipFrequency, EmptyInput) {
  const auto freq = compute_vip_frequency({}, Direction::kInbound);
  EXPECT_TRUE(freq.pairs.empty());
  EXPECT_DOUBLE_EQ(freq.single_attack_fraction, 0.0);
}

TEST(VipFrequency, CustomThreshold) {
  std::vector<AttackIncident> incidents;
  for (int i = 0; i < 5; ++i) incidents.push_back(incident(1, i * 100));
  const auto strict = compute_vip_frequency(incidents, Direction::kInbound, 2);
  EXPECT_DOUBLE_EQ(strict.frequent_fraction, 1.0);
  const auto loose = compute_vip_frequency(incidents, Direction::kInbound, 10);
  EXPECT_DOUBLE_EQ(loose.frequent_fraction, 0.0);
}

}  // namespace
}  // namespace dm::analysis
