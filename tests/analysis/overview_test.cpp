#include "analysis/overview.h"

#include <gtest/gtest.h>

namespace dm::analysis {
namespace {

using detect::AttackIncident;
using netflow::Direction;
using sim::AttackType;

AttackIncident incident(AttackType type, Direction dir) {
  AttackIncident inc;
  inc.vip = netflow::IPv4(1);
  inc.type = type;
  inc.direction = dir;
  inc.start = 0;
  inc.end = 1;
  return inc;
}

TEST(AttackMix, CountsAndShares) {
  std::vector<AttackIncident> incidents;
  for (int i = 0; i < 3; ++i) {
    incidents.push_back(incident(AttackType::kSynFlood, Direction::kInbound));
  }
  for (int i = 0; i < 7; ++i) {
    incidents.push_back(incident(AttackType::kSpam, Direction::kOutbound));
  }
  const auto mix = compute_attack_mix(incidents);
  EXPECT_EQ(mix.inbound_total, 3u);
  EXPECT_EQ(mix.outbound_total, 7u);
  EXPECT_EQ(mix.total(), 10u);
  EXPECT_DOUBLE_EQ(mix.share(AttackType::kSynFlood, Direction::kInbound), 0.3);
  EXPECT_DOUBLE_EQ(mix.share(AttackType::kSpam, Direction::kOutbound), 0.7);
  EXPECT_DOUBLE_EQ(mix.share(AttackType::kSpam, Direction::kInbound), 0.0);
  EXPECT_DOUBLE_EQ(mix.inbound_share(), 0.3);
}

TEST(AttackMix, EmptyInput) {
  const auto mix = compute_attack_mix({});
  EXPECT_EQ(mix.total(), 0u);
  EXPECT_DOUBLE_EQ(mix.inbound_share(), 0.0);
  EXPECT_DOUBLE_EQ(mix.share(AttackType::kTds, Direction::kInbound), 0.0);
}

}  // namespace
}  // namespace dm::analysis
