#include "analysis/active_time.h"

#include <gtest/gtest.h>

namespace dm::analysis {
namespace {

using detect::MinuteDetection;
using netflow::Direction;
using netflow::FlowRecord;
using netflow::IPv4;

const IPv4 kVip = IPv4::from_octets(100, 64, 0, 2);

netflow::PrefixSet cloud_space() {
  netflow::PrefixSet set;
  set.add(netflow::Prefix(IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

netflow::WindowedTrace trace_with_active_minutes(int minutes) {
  std::vector<FlowRecord> records;
  for (int m = 0; m < minutes; ++m) {
    FlowRecord r;
    r.minute = m;
    r.src_ip = IPv4::from_octets(4, 0, 0, 1);
    r.dst_ip = kVip;
    r.src_port = 1000;
    r.dst_port = 80;
    r.protocol = netflow::Protocol::kTcp;
    r.tcp_flags = netflow::TcpFlags::kAck;
    r.packets = 1;
    r.bytes = 100;
    records.push_back(r);
  }
  return netflow::aggregate_windows(std::move(records), cloud_space());
}

MinuteDetection det(util::Minute minute,
                    sim::AttackType type = sim::AttackType::kSynFlood) {
  return MinuteDetection{kVip, Direction::kInbound, type, minute, 100, 1};
}

TEST(ActiveTime, FractionComputedOverActiveMinutes) {
  const auto trace = trace_with_active_minutes(100);
  const std::vector<MinuteDetection> detections{det(5), det(6), det(7), det(8)};
  const auto result =
      compute_active_time(trace, detections, Direction::kInbound);
  ASSERT_EQ(result.vips.size(), 1u);
  EXPECT_EQ(result.vips[0].active_minutes, 100u);
  EXPECT_EQ(result.vips[0].attack_minutes, 4u);
  EXPECT_DOUBLE_EQ(result.vips[0].attack_fraction(), 0.04);
  EXPECT_DOUBLE_EQ(result.majority_attacked_fraction, 0.0);
}

TEST(ActiveTime, MultiVectorMinutesCountOnce) {
  const auto trace = trace_with_active_minutes(10);
  const std::vector<MinuteDetection> detections{
      det(3, sim::AttackType::kSynFlood),
      det(3, sim::AttackType::kUdpFlood),  // same minute, second vector
  };
  const auto result =
      compute_active_time(trace, detections, Direction::kInbound);
  ASSERT_EQ(result.vips.size(), 1u);
  EXPECT_EQ(result.vips[0].attack_minutes, 1u);
}

TEST(ActiveTime, MajorityAttackedVipDetected) {
  const auto trace = trace_with_active_minutes(10);
  std::vector<MinuteDetection> detections;
  for (int m = 0; m < 6; ++m) detections.push_back(det(m));
  const auto result =
      compute_active_time(trace, detections, Direction::kInbound);
  EXPECT_DOUBLE_EQ(result.majority_attacked_fraction, 1.0);
}

TEST(ActiveTime, UnattackedVipsExcluded) {
  const auto trace = trace_with_active_minutes(10);
  const auto result = compute_active_time(trace, {}, Direction::kInbound);
  EXPECT_TRUE(result.vips.empty());
  EXPECT_DOUBLE_EQ(result.majority_attacked_fraction, 0.0);
}

TEST(ActiveTime, DirectionScoped) {
  const auto trace = trace_with_active_minutes(10);
  const std::vector<MinuteDetection> detections{det(1)};
  const auto outbound =
      compute_active_time(trace, detections, Direction::kOutbound);
  EXPECT_TRUE(outbound.vips.empty());
}

}  // namespace
}  // namespace dm::analysis
