// Integration coverage of the analyses that need a full study: spoofing,
// AS/geo attribution, service tables, active time. Runs once on the shared
// smoke study.
#include <gtest/gtest.h>

#include "analysis/active_time.h"
#include "analysis/as_analysis.h"
#include "analysis/service_mix.h"
#include "analysis/spoof_analysis.h"
#include "analysis/validation.h"
#include "core/study.h"

namespace dm::analysis {
namespace {

using netflow::Direction;

const core::Study& study() {
  static const core::Study instance{[] {
    auto config = sim::ScenarioConfig::smoke();
    config.vips.vip_count = 250;
    config.days = 2;
    config.seed = 1717;
    return config;
  }()};
  return instance;
}

TEST(SpoofAnalysisIntegration, SynFloodsMostlySpoofed) {
  const auto spoof =
      analyze_spoofing(study().trace(), study().detection().incidents,
                       &study().blacklist());
  const std::size_t syn = sim::index_of(sim::AttackType::kSynFlood);
  if (spoof.tested[syn] >= 5) {
    // §6.1: 67.1% spoofed. Wide band at smoke scale.
    EXPECT_GT(spoof.spoofed_fraction[syn], 0.3);
  }
  // Connection-oriented attacks are never spoofed.
  const std::size_t bf = sim::index_of(sim::AttackType::kBruteForce);
  if (spoof.tested[bf] >= 5) {
    EXPECT_LT(spoof.spoofed_fraction[bf], 0.3);
  }
}

TEST(AsAnalysisIntegration, SharesAreSane) {
  const auto result =
      analyze_as(study().trace(), study().detection().incidents,
                 study().scenario().ases(), Direction::kInbound, nullptr,
                 &study().blacklist());
  EXPECT_GT(result.incidents_total, 0u);
  EXPECT_GT(result.incidents_mapped, 0u);
  EXPECT_LE(result.incidents_mapped, result.incidents_total);
  double total_share = 0.0;
  for (double s : result.class_share) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    total_share += s;
  }
  EXPECT_GT(total_share, 0.5);  // most incidents map somewhere
  EXPECT_GE(result.top_as_share, 0.0);
  EXPECT_LE(result.top_as_share, 1.0);
}

TEST(AsAnalysisIntegration, OutboundTargetsCluster) {
  const auto result =
      analyze_as(study().trace(), study().detection().incidents,
                 study().scenario().ases(), Direction::kOutbound, nullptr,
                 &study().blacklist());
  // §6.2: ~80% of outbound attacks target a single AS. Scripted
  // multi-AS events (spam eruption, case study) dilute the smoke-scale
  // fraction, so the bound is loose here; the Fig 15 bench reports the
  // paper-scale value.
  EXPECT_GT(result.single_as_fraction, 0.3);
}

TEST(GeoAnalysisIntegration, RegionsCovered) {
  const auto geo =
      analyze_geo(study().trace(), study().detection().incidents,
                  study().scenario().ases(), Direction::kInbound, nullptr,
                  &study().blacklist());
  EXPECT_GT(geo.incidents_mapped, 0u);
  int populated = 0;
  for (double share : geo.region_share) {
    if (share > 0.0) ++populated;
  }
  EXPECT_GE(populated, 3);
}

TEST(ServiceMixIntegration, TableThreeShape) {
  const auto table = compute_service_attack_table(
      study().trace(), study().detection().minutes,
      study().detection().incidents);
  EXPECT_GT(table.victim_vips, 0u);
  for (std::size_t s = 0; s < kReportedServiceCount; ++s) {
    EXPECT_GE(table.hosting_share[s], 0.0);
    EXPECT_LE(table.hosting_share[s], 100.0);
    for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
      // A (service, type) cell can never exceed the service's hosting share.
      EXPECT_LE(table.cell[s][t], table.hosting_share[s] + 1e-9);
    }
  }
}

TEST(ServiceMixIntegration, OutboundTargetsIncludeWeb) {
  const auto targets = compute_outbound_app_targets(
      study().trace(), study().detection().incidents);
  EXPECT_GT(targets.attacking_vips, 0u);
  // §6.2: web is the largest target class (64.5% in the paper; smaller
  // here because the simulated outbound mix is brute-force heavy).
  EXPECT_GT(targets.web_share, 0.12);
}

TEST(ActiveTimeIntegration, FractionsAreValid) {
  for (Direction dir : {Direction::kInbound, Direction::kOutbound}) {
    const auto result =
        compute_active_time(study().trace(), study().detection().minutes, dir);
    for (const auto& v : result.vips) {
      EXPECT_GT(v.active_minutes, 0u);
      EXPECT_LE(v.attack_minutes, v.active_minutes);
      EXPECT_GE(v.attack_fraction(), 0.0);
      EXPECT_LE(v.attack_fraction(), 1.0);
    }
    // Most attacked VIPs spend a small share of their life under attack.
    if (result.vips.size() >= 20) {
      EXPECT_LT(result.fraction_cdf.quantile(0.5), 0.6);
    }
  }
}

TEST(ValidationIntegration, CoverageInPlausibleBand) {
  ValidationConfig config;
  util::Rng rng(study().scenario().config().seed ^ 0xabcdefULL);
  const auto alerts = simulate_appliance_alerts(study().truth(), config, rng);
  const auto reports = simulate_incident_reports(study().truth(), config, rng);
  const auto result =
      validate(study().detection().incidents, alerts, reports, config);
  if (!alerts.empty()) {
    EXPECT_GT(result.inbound_coverage, 0.4);
    EXPECT_LE(result.inbound_coverage, 1.0);
  }
  if (!reports.empty()) {
    EXPECT_GT(result.outbound_coverage, 0.3);
    EXPECT_LE(result.outbound_coverage, 1.0);
  }
}

}  // namespace
}  // namespace dm::analysis
