#include <gtest/gtest.h>

#include "analysis/throughput.h"
#include "analysis/timing.h"

namespace dm::analysis {
namespace {

using detect::AttackIncident;
using detect::MinuteDetection;
using netflow::Direction;
using sim::AttackType;

MinuteDetection det(std::uint32_t vip, util::Minute minute, AttackType type,
                    std::uint64_t packets) {
  return MinuteDetection{netflow::IPv4(vip), Direction::kInbound, type, minute,
                         packets, 1};
}

TEST(AggregateThroughput, SumsAcrossVipsPerMinute) {
  std::vector<MinuteDetection> minutes{
      det(1, 10, AttackType::kSynFlood, 100),
      det(2, 10, AttackType::kSynFlood, 200),  // same minute, different VIP
      det(1, 11, AttackType::kSynFlood, 50),
  };
  const auto agg =
      compute_aggregate_throughput(minutes, Direction::kInbound, 4096);
  const auto& syn = agg.by_type[sim::index_of(AttackType::kSynFlood)];
  EXPECT_EQ(syn.samples, 2u);  // two active minutes
  // Peak minute: 300 sampled ppm -> 300 * 4096 / 60 pps.
  EXPECT_NEAR(syn.peak_pps, 300.0 * 4096 / 60.0, 1e-6);
  EXPECT_NEAR(syn.median_pps, (300.0 + 50.0) / 2.0 * 4096 / 60.0, 1e-6);
  EXPECT_NEAR(agg.overall.peak_pps, 300.0 * 4096 / 60.0, 1e-6);
}

TEST(AggregateThroughput, DirectionFiltered) {
  std::vector<MinuteDetection> minutes{det(1, 10, AttackType::kSynFlood, 100)};
  const auto agg =
      compute_aggregate_throughput(minutes, Direction::kOutbound, 4096);
  EXPECT_EQ(agg.overall.samples, 0u);
}

AttackIncident incident(AttackType type, std::uint64_t peak_ppm,
                        util::Minute start = 0, util::Minute dur = 10,
                        std::uint32_t vip = 1) {
  AttackIncident inc;
  inc.vip = netflow::IPv4(vip);
  inc.type = type;
  inc.direction = Direction::kInbound;
  inc.start = start;
  inc.end = start + dur;
  inc.peak_sampled_ppm = peak_ppm;
  inc.active_minutes = static_cast<std::uint32_t>(dur);
  inc.ramp_up_minutes = 2;
  return inc;
}

TEST(PerVipThroughput, MedianAndMax) {
  std::vector<AttackIncident> incidents{
      incident(AttackType::kUdpFlood, 100),
      incident(AttackType::kUdpFlood, 1000),
      incident(AttackType::kUdpFlood, 10'000),
  };
  const auto result =
      compute_per_vip_throughput(incidents, Direction::kInbound, 4096);
  const auto& udp = result.by_type[sim::index_of(AttackType::kUdpFlood)];
  EXPECT_EQ(udp.samples, 3u);
  EXPECT_NEAR(udp.median_pps, 1000.0 * 4096 / 60.0, 1e-6);
  EXPECT_NEAR(udp.peak_pps, 10'000.0 * 4096 / 60.0, 1e-6);
  EXPECT_NEAR(result.spread(AttackType::kUdpFlood), 10.0, 1e-9);
}

TEST(Timing, DurationStatistics) {
  std::vector<AttackIncident> incidents;
  for (util::Minute d : {1, 2, 5, 10, 100}) {
    incidents.push_back(incident(AttackType::kPortScan, 10, 0, d));
  }
  const auto timing = compute_timing(incidents, Direction::kInbound);
  const auto& scan = timing.duration[sim::index_of(AttackType::kPortScan)];
  EXPECT_EQ(scan.samples, 5u);
  EXPECT_DOUBLE_EQ(scan.median, 5.0);
  EXPECT_GT(scan.p99, 80.0);
}

TEST(Timing, InterArrivalPerVip) {
  std::vector<AttackIncident> incidents{
      incident(AttackType::kSynFlood, 10, 0, 5, 1),
      incident(AttackType::kSynFlood, 10, 100, 5, 1),
      incident(AttackType::kSynFlood, 10, 250, 5, 1),
      // Another VIP's lone attack contributes no gap.
      incident(AttackType::kSynFlood, 10, 40, 5, 2),
  };
  const auto timing = compute_timing(incidents, Direction::kInbound);
  const auto& syn = timing.interarrival[sim::index_of(AttackType::kSynFlood)];
  EXPECT_EQ(syn.samples, 2u);  // gaps 100 and 150
  EXPECT_DOUBLE_EQ(syn.median, 125.0);
}

TEST(Timing, RampUpOnlyForVolumeTypes) {
  std::vector<AttackIncident> incidents{
      incident(AttackType::kSynFlood, 10),
      incident(AttackType::kBruteForce, 10),
  };
  const auto timing = compute_timing(incidents, Direction::kInbound);
  EXPECT_EQ(timing.ramp_up[sim::index_of(AttackType::kSynFlood)].samples, 1u);
  EXPECT_EQ(timing.ramp_up[sim::index_of(AttackType::kBruteForce)].samples, 0u);
}

TEST(Bimodal, SplitsPopulations) {
  std::vector<AttackIncident> incidents;
  // Small mode: ~8 Kpps (117 ppm sampled), gaps 200; large: ~457 Kpps, gaps 60.
  for (int i = 0; i < 8; ++i) {
    incidents.push_back(incident(AttackType::kUdpFlood, 117, i * 200, 5, 1));
  }
  for (int i = 0; i < 2; ++i) {
    incidents.push_back(incident(AttackType::kUdpFlood, 6700, i * 60, 5, 2));
  }
  const auto d = decompose_bimodal(incidents, AttackType::kUdpFlood,
                                   Direction::kInbound, 4096, 50'000.0);
  EXPECT_NEAR(d.small_fraction, 0.8, 1e-9);
  EXPECT_NEAR(d.large_fraction, 0.2, 1e-9);
  EXPECT_NEAR(d.small_median_peak_pps, 117.0 * 4096 / 60, 1.0);
  EXPECT_NEAR(d.large_median_peak_pps, 6700.0 * 4096 / 60, 10.0);
  EXPECT_DOUBLE_EQ(d.small_median_interarrival, 200.0);
  EXPECT_DOUBLE_EQ(d.large_median_interarrival, 60.0);
}

TEST(Bimodal, EmptyInput) {
  const auto d = decompose_bimodal({}, AttackType::kUdpFlood,
                                   Direction::kInbound, 4096);
  EXPECT_DOUBLE_EQ(d.small_fraction, 0.0);
  EXPECT_DOUBLE_EQ(d.large_fraction, 0.0);
}

}  // namespace
}  // namespace dm::analysis
