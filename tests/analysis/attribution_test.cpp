#include "analysis/attribution.h"

#include <gtest/gtest.h>

namespace dm::analysis {
namespace {

using netflow::Direction;
using netflow::FlowRecord;
using netflow::IPv4;
using netflow::Protocol;
using netflow::TcpFlags;
using sim::AttackType;

const IPv4 kVip = IPv4::from_octets(100, 64, 0, 4);
const IPv4 kRemoteA = IPv4::from_octets(4, 0, 0, 1);
const IPv4 kRemoteB = IPv4::from_octets(4, 0, 0, 2);

netflow::PrefixSet cloud_space() {
  netflow::PrefixSet set;
  set.add(netflow::Prefix(IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

FlowRecord flow(util::Minute m, IPv4 remote, Protocol proto, TcpFlags flags,
                std::uint16_t dst_port, std::uint32_t pkts,
                std::uint16_t src_port = 50'000) {
  FlowRecord r;
  r.minute = m;
  r.src_ip = remote;
  r.dst_ip = kVip;
  r.src_port = src_port;
  r.dst_port = dst_port;
  r.protocol = proto;
  r.tcp_flags = flags;
  r.packets = pkts;
  r.bytes = pkts * 100;
  return r;
}

TEST(RecordMatches, PerTypeFilters) {
  const auto syn = flow(0, kRemoteA, Protocol::kTcp, TcpFlags::kSyn, 80, 1);
  EXPECT_TRUE(record_matches(AttackType::kSynFlood, syn, Direction::kInbound,
                             nullptr));
  EXPECT_FALSE(record_matches(AttackType::kUdpFlood, syn, Direction::kInbound,
                              nullptr));

  const auto udp = flow(0, kRemoteA, Protocol::kUdp, TcpFlags::kNone, 80, 1);
  EXPECT_TRUE(record_matches(AttackType::kUdpFlood, udp, Direction::kInbound,
                             nullptr));

  // DNS responses (src port 53) belong to reflection, not the UDP class.
  const auto dns =
      flow(0, kRemoteA, Protocol::kUdp, TcpFlags::kNone, 9999, 1, 53);
  EXPECT_TRUE(record_matches(AttackType::kDnsReflection, dns,
                             Direction::kInbound, nullptr));
  EXPECT_FALSE(record_matches(AttackType::kUdpFlood, dns, Direction::kInbound,
                              nullptr));

  const auto ssh = flow(0, kRemoteA, Protocol::kTcp,
                        TcpFlags::kSyn | TcpFlags::kAck, 22, 3);
  EXPECT_TRUE(record_matches(AttackType::kBruteForce, ssh, Direction::kInbound,
                             nullptr));

  const auto sql = flow(0, kRemoteA, Protocol::kTcp,
                        TcpFlags::kAck | TcpFlags::kPsh, 3306, 2);
  EXPECT_TRUE(record_matches(AttackType::kSqlInjection, sql,
                             Direction::kInbound, nullptr));

  const auto scan = flow(0, kRemoteA, Protocol::kTcp, TcpFlags::kNone, 137, 1);
  EXPECT_TRUE(record_matches(AttackType::kPortScan, scan, Direction::kInbound,
                             nullptr));
}

TEST(RecordMatches, TdsRequiresBlacklist) {
  netflow::PrefixSet blacklist;
  blacklist.add(netflow::Prefix(kRemoteB, 32));
  const auto to_tds =
      flow(0, kRemoteB, Protocol::kTcp, TcpFlags::kAck | TcpFlags::kPsh, 80, 1);
  EXPECT_TRUE(record_matches(AttackType::kTds, to_tds, Direction::kInbound,
                             &blacklist));
  const auto to_clean =
      flow(0, kRemoteA, Protocol::kTcp, TcpFlags::kAck | TcpFlags::kPsh, 80, 1);
  EXPECT_FALSE(record_matches(AttackType::kTds, to_clean, Direction::kInbound,
                              &blacklist));
  EXPECT_FALSE(record_matches(AttackType::kTds, to_tds, Direction::kInbound,
                              nullptr));
}

TEST(IncidentRemotes, AggregatesAndSorts) {
  std::vector<FlowRecord> records{
      flow(10, kRemoteA, Protocol::kTcp, TcpFlags::kSyn, 80, 3),
      flow(11, kRemoteA, Protocol::kTcp, TcpFlags::kSyn, 80, 5),
      flow(11, kRemoteB, Protocol::kTcp, TcpFlags::kSyn, 80, 20),
      // Outside the incident window: ignored.
      flow(50, kRemoteA, Protocol::kTcp, TcpFlags::kSyn, 80, 100),
      // Wrong traffic class (plain ACK): ignored.
      flow(11, kRemoteA, Protocol::kTcp, TcpFlags::kAck, 80, 100),
  };
  const auto trace = netflow::aggregate_windows(std::move(records), cloud_space());

  detect::AttackIncident inc;
  inc.vip = kVip;
  inc.direction = Direction::kInbound;
  inc.type = AttackType::kSynFlood;
  inc.start = 10;
  inc.end = 12;
  const auto remotes = incident_remotes(trace, inc);
  ASSERT_EQ(remotes.size(), 2u);
  EXPECT_EQ(remotes[0].remote, kRemoteB);  // sorted by packets desc
  EXPECT_EQ(remotes[0].packets, 20u);
  EXPECT_EQ(remotes[1].remote, kRemoteA);
  EXPECT_EQ(remotes[1].packets, 8u);
}

TEST(IncidentRemotes, EmptyWhenNoMatch) {
  std::vector<FlowRecord> records{
      flow(10, kRemoteA, Protocol::kTcp, TcpFlags::kAck, 80, 3),
  };
  const auto trace = netflow::aggregate_windows(std::move(records), cloud_space());
  detect::AttackIncident inc;
  inc.vip = kVip;
  inc.direction = Direction::kInbound;
  inc.type = AttackType::kSynFlood;
  inc.start = 10;
  inc.end = 11;
  EXPECT_TRUE(incident_remotes(trace, inc).empty());
}

}  // namespace
}  // namespace dm::analysis
