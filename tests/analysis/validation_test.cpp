#include "analysis/validation.h"

#include <gtest/gtest.h>

namespace dm::analysis {
namespace {

using detect::AttackIncident;
using netflow::Direction;
using sim::AttackEpisode;
using sim::AttackType;

AttackEpisode episode(AttackType type, Direction dir, double pps,
                      util::Minute start = 100, util::Minute dur = 10,
                      std::uint32_t vip = 1) {
  AttackEpisode e;
  e.type = type;
  e.direction = dir;
  e.vip = netflow::IPv4(vip);
  e.start = start;
  e.end = start + dur;
  e.peak_true_pps = pps;
  e.remote_hosts.push_back(netflow::IPv4(0x04000001));
  return e;
}

TEST(ApplianceAlerts, OnlyHighVolumeFloodsAlert) {
  sim::GroundTruth truth;
  truth.episodes.push_back(
      episode(AttackType::kSynFlood, Direction::kInbound, 100'000.0));
  truth.episodes.push_back(
      episode(AttackType::kSynFlood, Direction::kInbound, 1'000.0, 400));
  truth.episodes.push_back(
      episode(AttackType::kBruteForce, Direction::kInbound, 100'000.0, 800));
  truth.episodes.push_back(
      episode(AttackType::kSynFlood, Direction::kOutbound, 100'000.0, 900));
  ValidationConfig config;
  config.appliance_false_positive_rate = 0.0;
  util::Rng rng(1);
  const auto alerts = simulate_appliance_alerts(truth, config, rng);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].type, AttackType::kSynFlood);
  EXPECT_FALSE(alerts[0].false_positive);
}

TEST(ApplianceAlerts, NearbyEpisodesMerge) {
  sim::GroundTruth truth;
  truth.episodes.push_back(
      episode(AttackType::kUdpFlood, Direction::kInbound, 80'000.0, 100));
  truth.episodes.push_back(
      episode(AttackType::kUdpFlood, Direction::kInbound, 80'000.0, 140));
  truth.episodes.push_back(
      episode(AttackType::kUdpFlood, Direction::kInbound, 80'000.0, 2000));
  ValidationConfig config;
  config.appliance_false_positive_rate = 0.0;
  util::Rng rng(2);
  const auto alerts = simulate_appliance_alerts(truth, config, rng);
  EXPECT_EQ(alerts.size(), 2u);  // first two merge, third stands alone
}

TEST(ApplianceAlerts, FalsePositivesInjected) {
  sim::GroundTruth truth;
  for (int i = 0; i < 10; ++i) {
    truth.episodes.push_back(episode(AttackType::kSynFlood, Direction::kInbound,
                                     100'000.0, 100 + i * 500,
                                     5, static_cast<std::uint32_t>(i)));
  }
  ValidationConfig config;
  config.appliance_false_positive_rate = 0.3;
  util::Rng rng(3);
  const auto alerts = simulate_appliance_alerts(truth, config, rng);
  std::size_t fp = 0;
  for (const auto& a : alerts) fp += a.false_positive;
  EXPECT_EQ(fp, 3u);
}

TEST(IncidentReports, OnlyOutboundReported) {
  sim::GroundTruth truth;
  truth.episodes.push_back(
      episode(AttackType::kSpam, Direction::kInbound, 5'000.0));
  ValidationConfig config;
  config.other_reports = 0;
  config.ftp_brute_force_reports = 0;
  // Make reporting certain for spam.
  config.report_probability[sim::index_of(AttackType::kSpam)] = 1.0;
  util::Rng rng(4);
  EXPECT_TRUE(simulate_incident_reports(truth, config, rng).empty());

  truth.episodes.push_back(
      episode(AttackType::kSpam, Direction::kOutbound, 5'000.0));
  const auto reports = simulate_incident_reports(truth, config, rng);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, ReportKind::kNetFlowType);
}

TEST(IncidentReports, UnmatchableKindsIncluded) {
  sim::GroundTruth truth;
  ValidationConfig config;
  config.other_reports = 4;
  config.ftp_brute_force_reports = 2;
  util::Rng rng(5);
  const auto reports = simulate_incident_reports(truth, config, rng);
  std::size_t other = 0;
  std::size_t ftp = 0;
  for (const auto& r : reports) {
    other += r.kind == ReportKind::kOther;
    ftp += r.kind == ReportKind::kFtpBruteForce;
  }
  EXPECT_EQ(other, 4u);
  EXPECT_EQ(ftp, 2u);
}

TEST(Validate, MatchesByVipTypeAndTime) {
  std::vector<AttackIncident> detected(1);
  detected[0].vip = netflow::IPv4(1);
  detected[0].type = AttackType::kSynFlood;
  detected[0].direction = Direction::kInbound;
  detected[0].start = 100;
  detected[0].end = 110;

  std::vector<ApplianceAlert> alerts(2);
  alerts[0] = {netflow::IPv4(1), AttackType::kSynFlood, 95, 120, false};
  alerts[1] = {netflow::IPv4(2), AttackType::kSynFlood, 95, 120, false};

  const auto result = validate(detected, alerts, {}, ValidationConfig{});
  EXPECT_EQ(result.inbound[sim::index_of(AttackType::kSynFlood)].total, 2u);
  EXPECT_EQ(result.inbound[sim::index_of(AttackType::kSynFlood)].matched, 1u);
  EXPECT_DOUBLE_EQ(result.inbound_coverage, 0.5);
}

TEST(Validate, FalsePositiveAlertsNeverMatch) {
  std::vector<AttackIncident> detected(1);
  detected[0].vip = netflow::IPv4(1);
  detected[0].type = AttackType::kSynFlood;
  detected[0].direction = Direction::kInbound;
  detected[0].start = 100;
  detected[0].end = 110;

  std::vector<ApplianceAlert> alerts(1);
  alerts[0] = {netflow::IPv4(1), AttackType::kSynFlood, 95, 120, true};
  const auto result = validate(detected, alerts, {}, ValidationConfig{});
  EXPECT_EQ(result.inbound[sim::index_of(AttackType::kSynFlood)].matched, 0u);
}

TEST(Validate, OtherReportsCountAsMisses) {
  std::vector<IncidentReport> reports(1);
  reports[0].kind = ReportKind::kOther;
  const auto result = validate({}, {}, reports, ValidationConfig{});
  EXPECT_EQ(result.outbound_other.total, 1u);
  EXPECT_DOUBLE_EQ(result.outbound_coverage, 0.0);
}

TEST(Validate, TimeSlackRespected) {
  std::vector<AttackIncident> detected(1);
  detected[0].vip = netflow::IPv4(1);
  detected[0].type = AttackType::kUdpFlood;
  detected[0].direction = Direction::kOutbound;
  detected[0].start = 100;
  detected[0].end = 105;

  std::vector<IncidentReport> reports(1);
  reports[0].vip = netflow::IPv4(1);
  reports[0].kind = ReportKind::kNetFlowType;
  reports[0].type = AttackType::kUdpFlood;
  reports[0].start = 130;  // within the default 30-minute slack
  reports[0].end = 140;
  ValidationConfig config;
  EXPECT_DOUBLE_EQ(validate(detected, {}, reports, config).outbound_coverage,
                   1.0);
  config.match_slack = 5;
  EXPECT_DOUBLE_EQ(validate(detected, {}, reports, config).outbound_coverage,
                   0.0);
}

}  // namespace
}  // namespace dm::analysis
