// exec::radix_sort must be a stable sort equivalent to std::stable_sort
// over the extracted key, for u64 and packed 128-bit keys alike — the
// canonical record order's correctness rests on both properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exec/radix_sort.h"
#include "util/rng.h"

namespace dm::exec {
namespace {

struct Item {
  std::uint64_t key = 0;
  std::uint32_t tag = 0;  ///< original position, for stability checks
};

std::vector<Item> random_items(std::size_t n, std::uint64_t key_range,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Item> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i].key = key_range == 0 ? rng() : rng.below(key_range);
    items[i].tag = static_cast<std::uint32_t>(i);
  }
  return items;
}

void expect_matches_stable_sort(std::vector<Item> items) {
  auto expected = items;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Item& a, const Item& b) { return a.key < b.key; });
  radix_sort(items, [](const Item& it) { return it.key; });
  ASSERT_EQ(items.size(), expected.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].key, expected[i].key) << "index " << i;
    EXPECT_EQ(items[i].tag, expected[i].tag) << "index " << i;
  }
}

TEST(RadixSort, EmptyAndSingleElement) {
  std::vector<Item> empty;
  radix_sort(empty, [](const Item& it) { return it.key; });
  EXPECT_TRUE(empty.empty());

  std::vector<Item> one{{42, 0}};
  radix_sort(one, [](const Item& it) { return it.key; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].key, 42u);
}

TEST(RadixSort, MatchesStableSortOnRandomU64Keys) {
  // Below and above the small-input comparison-sort cutoff.
  for (std::size_t n : {2u, 16u, 63u, 64u, 65u, 1000u, 4096u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    expect_matches_stable_sort(random_items(n, 0, 7 * n + 1));
  }
}

TEST(RadixSort, StableOnHeavilyDuplicatedKeys) {
  // key_range 8 over 2000 items: ~250 duplicates per key — stability means
  // every duplicate run keeps ascending tags.
  auto items = random_items(2000, 8, 99);
  radix_sort(items, [](const Item& it) { return it.key; });
  for (std::size_t i = 1; i < items.size(); ++i) {
    ASSERT_LE(items[i - 1].key, items[i].key);
    if (items[i - 1].key == items[i].key) {
      EXPECT_LT(items[i - 1].tag, items[i].tag) << "index " << i;
    }
  }
}

TEST(RadixSort, AllEqualKeysPreserveOrder) {
  auto items = random_items(500, 1, 3);
  radix_sort(items, [](const Item& it) { return it.key; });
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].tag, i);
  }
}

TEST(RadixSort, SortedAndReversedInputs) {
  std::vector<Item> asc(300), desc(300);
  for (std::uint32_t i = 0; i < 300; ++i) {
    asc[i] = {i, i};
    desc[i] = {299u - i, i};
  }
  expect_matches_stable_sort(asc);
  expect_matches_stable_sort(desc);
}

TEST(RadixSort, Key128OrdersHiThenLo) {
  EXPECT_LT((Key128{0, 5}), (Key128{1, 0}));
  EXPECT_LT((Key128{3, 1}), (Key128{3, 2}));
  EXPECT_EQ((Key128{3, 1}), (Key128{3, 1}));

  util::Rng rng(2015);
  std::vector<Key128> keys(800);
  for (auto& k : keys) {
    // Narrow ranges in both words force cross-word ordering decisions and
    // exercise the skipped-pass path (most high bytes are constant).
    k = Key128{rng.below(4), rng.below(1000)};
  }
  auto expected = keys;
  std::stable_sort(expected.begin(), expected.end());
  radix_sort(keys, [](const Key128& k) { return k; });
  EXPECT_EQ(keys, expected);
}

TEST(RadixSort, Key128MatchesStableSortWithPayload) {
  struct Wide {
    Key128 key;
    std::uint32_t tag = 0;
  };
  util::Rng rng(77);
  std::vector<Wide> items(3000);
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    items[i].key = Key128{rng.below(16) << 60 | rng.below(256), rng()};
    items[i].tag = i;
  }
  auto expected = items;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Wide& a, const Wide& b) { return a.key < b.key; });
  radix_sort(items, [](const Wide& w) { return w.key; });
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_EQ(items[i].key, expected[i].key) << "index " << i;
    ASSERT_EQ(items[i].tag, expected[i].tag) << "index " << i;
  }
}

// radix_sort_wide must produce exactly the permutation radix_sort does —
// stability plus a total key order make that permutation unique, so the
// 16-bit digit width is observationally invisible. Exercised across the
// small-input fallback boundary (n < 2^15 falls through to radix_sort) and
// with constant high/low digits to hit the pass-skip paths.
TEST(RadixSortWide, MatchesNarrowSortAcrossFallbackBoundary) {
  for (std::size_t n : {2u, 100u, 32767u, 32768u, 40000u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    util::Rng rng(n);
    struct U32Item {
      std::uint32_t key = 0;
      std::uint32_t tag = 0;
    };
    std::vector<U32Item> items(n);
    for (std::size_t i = 0; i < n; ++i) {
      items[i].key = static_cast<std::uint32_t>(rng());
      items[i].tag = static_cast<std::uint32_t>(i);
    }
    auto expected = items;
    radix_sort(expected, [](const U32Item& it) { return it.key; });
    radix_sort_wide(items, [](const U32Item& it) { return it.key; });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(items[i].key, expected[i].key) << "index " << i;
      ASSERT_EQ(items[i].tag, expected[i].tag) << "index " << i;
    }
  }
}

TEST(RadixSortWide, SkipsConstantDigits) {
  util::Rng rng(99);
  std::vector<std::uint32_t> order(40000);
  // Low digit constant (keys share bits 0..15), then high digit constant.
  for (const bool low_constant : {true, false}) {
    SCOPED_TRACE(low_constant ? "low constant" : "high constant");
    std::vector<std::uint32_t> keys(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<std::uint32_t>(i);
      const auto digit = static_cast<std::uint32_t>(rng() & 0xffff);
      keys[i] = low_constant ? (digit << 16) | 0x1234u : 0x5678u << 16 | digit;
    }
    auto expected = order;
    radix_sort(expected, [&](std::uint32_t i) { return keys[i]; });
    radix_sort_wide(order, [&](std::uint32_t i) { return keys[i]; });
    EXPECT_EQ(order, expected);
  }
}

}  // namespace
}  // namespace dm::exec
