#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/parallel.h"

namespace dm::exec {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 1000; ++i) {
    group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPool, ZeroThreadsRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  const auto caller = std::this_thread::get_id();
  bool ran_before_wait = false;
  std::thread::id ran_on;
  TaskGroup group(pool);
  group.run([&] {
    ran_before_wait = true;
    ran_on = std::this_thread::get_id();
  });
  // Inline mode executes at submission, not at wait.
  EXPECT_TRUE(ran_before_wait);
  EXPECT_EQ(ran_on, caller);
  group.wait();
}

TEST(ThreadPool, OneThreadCompletesOffCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ExceptionPropagatesFromWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(ThreadPool, LowestSequenceExceptionWins) {
  // Every task throws its own index; the survivor must be the earliest
  // submitted one, independent of scheduling.
  for (unsigned threads : {0u, 1u, 4u}) {
    ThreadPool pool(threads);
    TaskGroup group(pool);
    for (int i = 3; i < 20; ++i) {
      group.run([i] { throw std::runtime_error(std::to_string(i)); });
    }
    try {
      group.wait();
      FAIL() << "wait() must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3") << "threads=" << threads;
    }
  }
}

TEST(ThreadPool, GroupIsReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  group.run([&ran] { ++ran; });
  group.wait();
  group.run([&ran] { ++ran; });
  group.run([&ran] { ++ran; });
  group.wait();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  // A task fans out a child group on the same pool and waits on it — the
  // waiting worker must help drain the queue instead of blocking, even on a
  // one-worker pool.
  for (unsigned threads : {0u, 1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> leaves{0};
    TaskGroup outer(pool);
    for (int i = 0; i < 8; ++i) {
      outer.run([&pool, &leaves] {
        TaskGroup inner(pool);
        for (int j = 0; j < 8; ++j) {
          inner.run([&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
        }
        inner.wait();
      });
    }
    outer.wait();
    EXPECT_EQ(leaves.load(), 64) << "threads=" << threads;
  }
}

TEST(ThreadPool, StressManyTinyTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 50'000;
  std::vector<std::uint8_t> hit(kTasks, 0);
  TaskGroup group(pool);
  for (int i = 0; i < kTasks; ++i) {
    group.run([&hit, i] { hit[static_cast<std::size_t>(i)] = 1; });
  }
  group.wait();
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), kTasks);
}

TEST(ParallelExec, ParallelForCoversRangeOnce) {
  for (unsigned threads : {0u, 1u, 3u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> counts(999);
    parallel_for(&pool, counts.size(),
                 [&](std::size_t i) { counts[i].fetch_add(1); });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
}

TEST(ParallelExec, MapReduceMergesInIndexOrder) {
  // The reduction must see shard results in index order regardless of the
  // pool size; concatenation makes any reordering visible.
  const auto run = [](ThreadPool* pool) {
    return parallel_map_reduce<std::vector<std::size_t>, std::size_t>(
        pool, 200, std::vector<std::size_t>{},
        [](std::size_t i) { return i * i; },
        [](std::vector<std::size_t> acc, std::size_t x) {
          acc.push_back(x);
          return acc;
        });
  };
  const std::vector<std::size_t> serial = run(nullptr);
  ASSERT_EQ(serial.size(), 200u);
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(run(&pool), serial) << "threads=" << threads;
  }
}

TEST(ParallelExec, ParallelForPropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(&pool, 1000,
                            [](std::size_t i) {
                              if (i == 777) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(ParallelExec, ParallelSortMatchesSerialSort) {
  std::vector<std::uint64_t> base(20'000);
  std::uint64_t x = 88172645463325252ULL;  // xorshift64
  for (auto& v : base) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v = x % 5000;  // plenty of duplicates
  }
  auto expected = base;
  std::sort(expected.begin(), expected.end());
  for (unsigned threads : {0u, 1u, 2u, 5u}) {
    ThreadPool pool(threads);
    auto v = base;
    parallel_sort(&pool, v,
                  [](std::uint64_t a, std::uint64_t b) { return a < b; });
    EXPECT_EQ(v, expected) << "threads=" << threads;
  }
}

TEST(ParallelExec, NullPoolRunsSerially) {
  std::vector<int> order;
  parallel_for(nullptr, 50,
               [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  ASSERT_EQ(order.size(), 50u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace dm::exec
