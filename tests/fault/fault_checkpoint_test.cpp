// corrupt_checkpoint + KillSwitch unit tests: the checkpoint damage plans
// must be seed/index-deterministic with exact ledgers (the crash matrix
// trusts the CheckpointDamage report as ground truth), and the kill switch
// must fire exactly once at its armed (step, occurrence).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault.h"

namespace dm::fault {
namespace {

constexpr std::size_t kHeaderBytes = 6;  // DMCK magic + version

std::vector<std::uint8_t> sample_file(std::size_t size) {
  std::vector<std::uint8_t> bytes(size);
  for (std::size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<std::uint8_t>((i * 131) ^ (i >> 3));
  }
  return bytes;
}

std::size_t bit_difference(const std::vector<std::uint8_t>& a,
                           const std::vector<std::uint8_t>& b) {
  std::size_t bits = 0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    bits += static_cast<std::size_t>(__builtin_popcount(a[i] ^ b[i]));
  }
  return bits;
}

TEST(CorruptCheckpoint, IsSeedAndIndexDeterministic) {
  const auto clean = sample_file(512);
  CheckpointPlan plan;
  plan.bit_flips = 4;
  plan.truncate_tail = true;

  auto a = clean;
  auto b = clean;
  const CheckpointDamage da = FaultInjector(7).corrupt_checkpoint(a, plan, 3);
  const CheckpointDamage db = FaultInjector(7).corrupt_checkpoint(b, plan, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(da.flipped_offsets, db.flipped_offsets);
  EXPECT_EQ(da.bytes_removed, db.bytes_removed);

  // A different file index takes different (but still reproducible) damage.
  auto c = clean;
  const CheckpointDamage dc = FaultInjector(7).corrupt_checkpoint(c, plan, 4);
  EXPECT_TRUE(c != a || dc.flipped_offsets != da.flipped_offsets);

  // A different seed likewise.
  auto d = clean;
  const CheckpointDamage dd = FaultInjector(8).corrupt_checkpoint(d, plan, 3);
  EXPECT_TRUE(d != a || dd.flipped_offsets != da.flipped_offsets);
}

TEST(CorruptCheckpoint, BitFlipsLandPastTheHeaderAndAreExactlyLedgered) {
  const auto clean = sample_file(256);
  CheckpointPlan plan;
  plan.bit_flips = 5;

  auto bytes = clean;
  const CheckpointDamage damage =
      FaultInjector(11).corrupt_checkpoint(bytes, plan, 0);
  ASSERT_EQ(damage.flipped_offsets.size(), 5u);
  EXPECT_EQ(bytes.size(), clean.size());
  EXPECT_FALSE(damage.header_corrupted);
  EXPECT_FALSE(damage.torn);
  EXPECT_EQ(damage.bytes_removed, 0u);
  for (const std::uint64_t off : damage.flipped_offsets) {
    EXPECT_GE(off, kHeaderBytes);
    EXPECT_LT(off, bytes.size());
  }
  // Every changed byte is at a ledgered offset (flips may collide, so the
  // total changed-bit count is at most the plan's).
  EXPECT_LE(bit_difference(clean, bytes), 5u);
  EXPECT_GE(bit_difference(clean, bytes), 1u);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] != clean[i]) {
      EXPECT_NE(std::find(damage.flipped_offsets.begin(),
                          damage.flipped_offsets.end(), i),
                damage.flipped_offsets.end())
          << "unledgered damage at offset " << i;
    }
  }
}

TEST(CorruptCheckpoint, HeaderFlipStaysInsideTheHeader) {
  const auto clean = sample_file(64);
  CheckpointPlan plan;
  plan.corrupt_header = true;

  auto bytes = clean;
  const CheckpointDamage damage =
      FaultInjector(3).corrupt_checkpoint(bytes, plan, 1);
  EXPECT_TRUE(damage.header_corrupted);
  EXPECT_EQ(bit_difference(clean, bytes), 1u);
  for (std::size_t i = kHeaderBytes; i < bytes.size(); ++i) {
    EXPECT_EQ(bytes[i], clean[i]);
  }
}

TEST(CorruptCheckpoint, TruncateTailReportsExactBytesRemoved) {
  const auto clean = sample_file(300);
  CheckpointPlan plan;
  plan.truncate_tail = true;

  auto bytes = clean;
  const CheckpointDamage damage =
      FaultInjector(5).corrupt_checkpoint(bytes, plan, 2);
  EXPECT_GT(damage.bytes_removed, 0u);
  EXPECT_EQ(bytes.size(), clean.size() - damage.bytes_removed);
  EXPECT_GE(bytes.size(), kHeaderBytes);
  // The surviving prefix is untouched.
  for (std::size_t i = 0; i < bytes.size(); ++i) EXPECT_EQ(bytes[i], clean[i]);
}

TEST(CorruptCheckpoint, TornPrefixLeavesLessThanAHeader) {
  const auto clean = sample_file(128);
  CheckpointPlan plan;
  plan.torn_prefix = true;
  plan.bit_flips = 9;  // ignored: nothing is left to flip after the tear

  auto bytes = clean;
  const CheckpointDamage damage =
      FaultInjector(9).corrupt_checkpoint(bytes, plan, 0);
  EXPECT_TRUE(damage.torn);
  EXPECT_TRUE(damage.any());
  EXPECT_LT(bytes.size(), kHeaderBytes);
  EXPECT_EQ(damage.bytes_removed, clean.size() - bytes.size());
  EXPECT_TRUE(damage.flipped_offsets.empty());
}

TEST(CorruptCheckpoint, TinyFilesAreAlreadyTorn) {
  CheckpointPlan plan;
  plan.bit_flips = 3;
  plan.corrupt_header = true;
  plan.truncate_tail = true;

  auto bytes = sample_file(kHeaderBytes);  // <= header: untouched
  const auto copy = bytes;
  const CheckpointDamage damage =
      FaultInjector(1).corrupt_checkpoint(bytes, plan, 0);
  EXPECT_EQ(bytes, copy);
  EXPECT_FALSE(damage.any());
}

TEST(CorruptCheckpoint, EmptyPlanIsIdentity) {
  auto bytes = sample_file(200);
  const auto copy = bytes;
  const CheckpointDamage damage =
      FaultInjector(42).corrupt_checkpoint(bytes, CheckpointPlan{}, 0);
  EXPECT_EQ(bytes, copy);
  EXPECT_FALSE(damage.any());
}

TEST(KillSwitch, FiresAtTheArmedOccurrenceExactlyOnce) {
  KillSwitch kill(3, 2);  // second occurrence of step 3
  EXPECT_NO_THROW(kill.poll(3));
  EXPECT_NO_THROW(kill.poll(1));
  EXPECT_FALSE(kill.fired());
  EXPECT_THROW(kill.poll(3), InjectedCrash);
  EXPECT_TRUE(kill.fired());
  // Fires at most once: the harness resumes polling after recovery.
  EXPECT_NO_THROW(kill.poll(3));
  EXPECT_EQ(kill.count(3), 3u);
  EXPECT_EQ(kill.count(1), 1u);
  EXPECT_EQ(kill.count(99), 0u);
}

TEST(KillSwitch, OccurrenceZeroIsDisarmed) {
  KillSwitch kill(1, 0);
  for (int i = 0; i < 10; ++i) EXPECT_NO_THROW(kill.poll(1));
  EXPECT_FALSE(kill.fired());
  EXPECT_EQ(kill.count(1), 10u);
}

}  // namespace
}  // namespace dm::fault
