#include "fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "netflow/trace_io.h"
#include "util/rng.h"

namespace dm::fault {
namespace {

using netflow::FlowRecord;

std::vector<FlowRecord> make_feed(std::size_t n, std::uint64_t seed = 11) {
  util::Rng rng(seed);
  std::vector<FlowRecord> records(n);
  util::Minute minute = 0;
  for (auto& r : records) {
    if (rng.chance(0.05)) ++minute;
    r.minute = minute;
    r.src_ip = netflow::IPv4(static_cast<std::uint32_t>(rng()));
    r.dst_ip = netflow::IPv4(static_cast<std::uint32_t>(rng()));
    r.src_port = static_cast<std::uint16_t>(rng.below(65536));
    r.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    r.packets = static_cast<std::uint32_t>(1 + rng.below(100));
    r.bytes = r.packets * 100;
  }
  return records;
}

std::vector<std::uint8_t> make_trace_bytes(std::size_t records,
                                           std::uint64_t seed = 11) {
  std::stringstream buffer;
  netflow::TraceWriter writer(buffer, 4096);
  writer.write_all(make_feed(records, seed));
  writer.finish();
  const std::string s = buffer.str();
  return {s.begin(), s.end()};
}

TEST(FaultInjector, ByteCorruptionIsSeedDeterministic) {
  BytePlan plan;
  plan.corrupt_blocks = 2;
  plan.truncate_blocks = 1;
  plan.bit_flips = 3;

  auto a = make_trace_bytes(20'000);
  auto b = a;
  const ByteDamage da = FaultInjector(77).corrupt(a, plan);
  const ByteDamage db = FaultInjector(77).corrupt(b, plan);
  EXPECT_EQ(a, b);
  EXPECT_EQ(da.corrupted_blocks, db.corrupted_blocks);
  EXPECT_EQ(da.truncated_blocks, db.truncated_blocks);
  EXPECT_EQ(da.flipped_offsets, db.flipped_offsets);
  EXPECT_EQ(da.bytes_removed, db.bytes_removed);

  auto c = make_trace_bytes(20'000);
  FaultInjector(78).corrupt(c, plan);
  EXPECT_NE(a, c);  // different seed, different damage
}

TEST(FaultInjector, CorruptAndTruncateTargetsAreDistinct) {
  BytePlan plan;
  plan.corrupt_blocks = 3;
  plan.truncate_blocks = 2;
  auto bytes = make_trace_bytes(30'000);  // 8 blocks
  const ByteDamage damage = FaultInjector(5).corrupt(bytes, plan);
  ASSERT_EQ(damage.corrupted_blocks.size(), 3u);
  ASSERT_EQ(damage.truncated_blocks.size(), 2u);
  for (const std::uint32_t t : damage.truncated_blocks) {
    EXPECT_EQ(std::count(damage.corrupted_blocks.begin(),
                         damage.corrupted_blocks.end(), t),
              0);
  }
  EXPECT_GT(damage.bytes_removed, 0u);
}

TEST(FaultInjector, TailTruncationRemovesEndMarker) {
  BytePlan plan;
  plan.truncate_tail = true;
  auto bytes = make_trace_bytes(10'000);
  const std::size_t original = bytes.size();
  const ByteDamage damage = FaultInjector(3).corrupt(bytes, plan);
  EXPECT_TRUE(damage.tail_truncated);
  EXPECT_LT(bytes.size(), original);
  EXPECT_EQ(damage.bytes_removed, original - bytes.size());
}

TEST(FaultInjector, DegradeIsSeedDeterministic) {
  RecordPlan plan;
  plan.duplicate_prob = 0.05;
  plan.reorder_window = 16;
  plan.loss_bursts = 2;
  plan.stuck_clock_prob = 0.02;

  const auto feed = make_feed(5000);
  RecordDamage da;
  RecordDamage db;
  const auto a = FaultInjector(99).degrade(feed, plan, &da);
  const auto b = FaultInjector(99).degrade(feed, plan, &db);
  EXPECT_EQ(a, b);
  EXPECT_EQ(da.duplicated, db.duplicated);
  EXPECT_EQ(da.displaced, db.displaced);
  EXPECT_EQ(da.dropped, db.dropped);
  EXPECT_EQ(da.stuck, db.stuck);
  EXPECT_EQ(da.lost_ranges, db.lost_ranges);
}

TEST(FaultInjector, FaultFamiliesAreIndependentStreams) {
  // Enabling duplication must not change which records a loss burst cuts:
  // each family draws from its own split stream of the seed.
  RecordPlan loss_only;
  loss_only.loss_bursts = 1;
  loss_only.loss_burst_minutes = 3;
  RecordPlan loss_and_dup = loss_only;
  loss_and_dup.duplicate_prob = 0.5;

  const auto feed = make_feed(5000);
  RecordDamage da;
  RecordDamage db;
  (void)FaultInjector(4).degrade(feed, loss_only, &da);
  (void)FaultInjector(4).degrade(feed, loss_and_dup, &db);
  EXPECT_EQ(da.lost_ranges, db.lost_ranges);
  EXPECT_EQ(da.dropped, db.dropped);
}

TEST(FaultInjector, ReorderDisplacementIsBounded) {
  RecordPlan plan;
  plan.reorder_window = 8;
  const auto feed = make_feed(4000);
  RecordDamage damage;
  const auto out = FaultInjector(13).degrade(feed, plan, &damage);
  ASSERT_EQ(out.size(), feed.size());
  EXPECT_GT(damage.displaced, 0u);

  // Every output record must sit within the window of its input position.
  // Records are not unique, so match multiset-style: each output position i
  // must find its record somewhere in feed[i-w, i+w].
  const std::ptrdiff_t w = 8;
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(out.size()); ++i) {
    const auto lo = feed.begin() + std::max<std::ptrdiff_t>(0, i - w);
    const auto hi =
        feed.begin() +
        std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(feed.size()),
                                 i + w + 1);
    EXPECT_NE(std::find(lo, hi, out[static_cast<std::size_t>(i)]), hi)
        << "record at output position " << i
        << " displaced beyond the reorder window";
  }
}

TEST(FaultInjector, LossBurstsCutExactlyTheReportedMinutes) {
  RecordPlan plan;
  plan.loss_bursts = 2;
  plan.loss_burst_minutes = 4;
  const auto feed = make_feed(6000);
  RecordDamage damage;
  const auto out = FaultInjector(21).degrade(feed, plan, &damage);
  ASSERT_EQ(damage.lost_ranges.size(), 2u);

  const auto in_lost = [&damage](util::Minute m) {
    for (const auto& [from, to] : damage.lost_ranges) {
      if (m >= from && m < to) return true;
    }
    return false;
  };
  std::uint64_t expected_dropped = 0;
  for (const auto& r : feed) {
    if (in_lost(r.minute)) ++expected_dropped;
  }
  EXPECT_EQ(damage.dropped, expected_dropped);
  EXPECT_EQ(out.size(), feed.size() - expected_dropped);
  for (const auto& r : out) EXPECT_FALSE(in_lost(r.minute));
}

TEST(FaultInjector, DuplicatesLandAdjacentAndAreCounted) {
  RecordPlan plan;
  plan.duplicate_prob = 0.25;
  const auto feed = make_feed(4000);
  RecordDamage damage;
  const auto out = FaultInjector(8).degrade(feed, plan, &damage);
  EXPECT_EQ(out.size(), feed.size() + damage.duplicated);
  EXPECT_GT(damage.duplicated, 500u);  // ~1000 expected at p=0.25

  std::uint64_t adjacent_pairs = 0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i] == out[i - 1]) ++adjacent_pairs;
  }
  EXPECT_GE(adjacent_pairs, damage.duplicated);
}

TEST(FaultInjector, StuckClockFreezesTimestamps) {
  RecordPlan plan;
  plan.stuck_clock_prob = 0.1;
  const auto feed = make_feed(4000);
  RecordDamage damage;
  const auto out = FaultInjector(31).degrade(feed, plan, &damage);
  ASSERT_EQ(out.size(), feed.size());
  EXPECT_GT(damage.stuck, 0u);
  std::uint64_t differing = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].minute != feed[i].minute) ++differing;
  }
  EXPECT_EQ(differing, damage.stuck);
}

TEST(FaultInjector, EmptyPlanIsIdentity) {
  const auto feed = make_feed(1000);
  RecordDamage damage;
  const auto out = FaultInjector(1).degrade(feed, RecordPlan{}, &damage);
  EXPECT_EQ(out, feed);
  EXPECT_EQ(damage.duplicated, 0u);
  EXPECT_EQ(damage.displaced, 0u);
  EXPECT_EQ(damage.dropped, 0u);
  EXPECT_EQ(damage.stuck, 0u);

  auto bytes = make_trace_bytes(5000);
  const auto original = bytes;
  const ByteDamage byte_damage = FaultInjector(1).corrupt(bytes, BytePlan{});
  EXPECT_EQ(bytes, original);
  EXPECT_EQ(byte_damage.bytes_removed, 0u);
}

}  // namespace
}  // namespace dm::fault
