#include "sim/episode.h"

#include <gtest/gtest.h>

namespace dm::sim {
namespace {

AttackEpisode base_episode() {
  AttackEpisode e;
  e.type = AttackType::kUdpFlood;
  e.start = 100;
  e.end = 120;
  e.peak_true_pps = 10'000.0;
  e.ramp_up_minutes = 3.0;
  return e;
}

TEST(Episode, ActiveWindow) {
  const AttackEpisode e = base_episode();
  EXPECT_FALSE(e.active_at(99));
  EXPECT_TRUE(e.active_at(100));
  EXPECT_TRUE(e.active_at(119));
  EXPECT_FALSE(e.active_at(120));
  EXPECT_EQ(e.duration(), 20);
}

TEST(Episode, PlannedPpsRampsToPeak) {
  const AttackEpisode e = base_episode();
  EXPECT_DOUBLE_EQ(e.planned_pps(99), 0.0);
  const double first = e.planned_pps(100);
  const double second = e.planned_pps(101);
  EXPECT_GT(first, 0.0);
  EXPECT_LT(first, e.peak_true_pps);
  EXPECT_GT(second, first);
  // Past the ramp the plateau holds.
  EXPECT_DOUBLE_EQ(e.planned_pps(110), e.peak_true_pps);
  EXPECT_DOUBLE_EQ(e.planned_pps(119), e.peak_true_pps);
}

TEST(Episode, OneMinuteAttackReachesPeak) {
  AttackEpisode e = base_episode();
  e.end = 101;
  e.ramp_up_minutes = 0.3;
  // Mid-minute evaluation: a sub-minute ramp means the single window runs
  // at full rate.
  EXPECT_DOUBLE_EQ(e.planned_pps(100), e.peak_true_pps);
}

TEST(Episode, ZeroRampIsImmediate) {
  AttackEpisode e = base_episode();
  e.ramp_up_minutes = 0.0;
  EXPECT_DOUBLE_EQ(e.planned_pps(100), e.peak_true_pps);
}

TEST(Episode, OnOffPattern) {
  AttackEpisode e = base_episode();
  e.start = 0;
  e.end = 200;
  e.on_minutes = 10;
  e.off_minutes = 20;
  EXPECT_TRUE(e.active_at(0));
  EXPECT_TRUE(e.active_at(9));
  EXPECT_FALSE(e.active_at(10));
  EXPECT_FALSE(e.active_at(29));
  EXPECT_TRUE(e.active_at(30));
  EXPECT_DOUBLE_EQ(e.planned_pps(15), 0.0);
  EXPECT_GT(e.planned_pps(35), 0.0);
}

TEST(GroundTruth, FiltersByTypeAndDirection) {
  GroundTruth truth;
  AttackEpisode a = base_episode();
  a.direction = netflow::Direction::kInbound;
  AttackEpisode b = base_episode();
  b.type = AttackType::kSpam;
  b.direction = netflow::Direction::kOutbound;
  truth.episodes = {a, b};
  EXPECT_EQ(truth.of(AttackType::kUdpFlood, netflow::Direction::kInbound).size(),
            1u);
  EXPECT_EQ(truth.of(AttackType::kUdpFlood, netflow::Direction::kOutbound).size(),
            0u);
  EXPECT_EQ(truth.of(AttackType::kSpam, netflow::Direction::kOutbound).size(), 1u);
}

TEST(AttackType, TimeoutsMatchTableOne) {
  EXPECT_EQ(inactive_timeout(AttackType::kSynFlood), 1);
  EXPECT_EQ(inactive_timeout(AttackType::kUdpFlood), 1);
  EXPECT_EQ(inactive_timeout(AttackType::kIcmpFlood), 120);
  EXPECT_EQ(inactive_timeout(AttackType::kDnsReflection), 60);
  EXPECT_EQ(inactive_timeout(AttackType::kSpam), 60);
  EXPECT_EQ(inactive_timeout(AttackType::kBruteForce), 60);
  EXPECT_EQ(inactive_timeout(AttackType::kSqlInjection), 30);
  EXPECT_EQ(inactive_timeout(AttackType::kPortScan), 60);
  EXPECT_EQ(inactive_timeout(AttackType::kTds), 120);
}

TEST(AttackType, Classification) {
  EXPECT_TRUE(is_volume_based(AttackType::kSynFlood));
  EXPECT_TRUE(is_volume_based(AttackType::kDnsReflection));
  EXPECT_FALSE(is_volume_based(AttackType::kSpam));
  EXPECT_TRUE(is_flood(AttackType::kUdpFlood));
  EXPECT_FALSE(is_flood(AttackType::kDnsReflection));
  EXPECT_TRUE(is_spread_based(AttackType::kBruteForce));
  EXPECT_TRUE(is_spread_based(AttackType::kSqlInjection));
  EXPECT_FALSE(is_spread_based(AttackType::kPortScan));
}

TEST(AttackType, Names) {
  EXPECT_EQ(to_string(AttackType::kSynFlood), "SYN");
  EXPECT_EQ(to_string(AttackType::kTds), "TDS");
  EXPECT_EQ(to_string(BruteForceProtocol::kRdp), "RDP");
  EXPECT_EQ(to_string(PortScanKind::kXmas), "Xmas");
}

}  // namespace
}  // namespace dm::sim
