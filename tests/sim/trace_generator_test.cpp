#include "sim/trace_generator.h"

#include <gtest/gtest.h>

#include "netflow/window_aggregator.h"

namespace dm::sim {
namespace {

class TraceGeneratorTest : public ::testing::Test {
 protected:
  static ScenarioConfig config() {
    ScenarioConfig c = ScenarioConfig::smoke();
    c.vips.vip_count = 100;
    c.days = 1;
    c.seed = 2718;
    return c;
  }
  static const Scenario& scenario() {
    static const Scenario s{config()};
    return s;
  }
  static const TraceResult& result() {
    static const TraceResult r = generate_trace(scenario());
    return r;
  }
};

TEST_F(TraceGeneratorTest, ProducesRecordsAndTruth) {
  EXPECT_GT(result().records.size(), 1'000u);
  EXPECT_GT(result().truth.episodes.size(), 10u);
}

TEST_F(TraceGeneratorTest, AllRecordsWithinTrace) {
  const util::Minute end = config().total_minutes();
  for (const auto& r : result().records) {
    EXPECT_GE(r.minute, 0);
    EXPECT_LT(r.minute, end);
    EXPECT_GE(r.packets, 1u);
  }
}

TEST_F(TraceGeneratorTest, EveryRecordHasExactlyOneCloudEndpoint) {
  const auto& space = scenario().vips().cloud_space();
  for (const auto& r : result().records) {
    EXPECT_NE(space.contains(r.src_ip), space.contains(r.dst_ip))
        << netflow::to_string(r);
  }
}

TEST_F(TraceGeneratorTest, AggregationLosesNothing) {
  auto records = result().records;
  const auto trace = netflow::aggregate_windows(
      std::move(records), scenario().vips().cloud_space(),
      &scenario().tds().as_prefix_set());
  EXPECT_EQ(trace.unclassified_records(), 0u);
  EXPECT_EQ(trace.records().size(), result().records.size());
  std::uint64_t window_packets = 0;
  std::uint64_t record_packets = 0;
  for (const auto& w : trace.windows()) window_packets += w.packets;
  for (const auto& r : result().records) record_packets += r.packets;
  EXPECT_EQ(window_packets, record_packets);
}

TEST_F(TraceGeneratorTest, DeterministicForSeed) {
  const TraceResult again = generate_trace(scenario());
  ASSERT_EQ(again.records.size(), result().records.size());
  EXPECT_EQ(again.records, result().records);
  EXPECT_EQ(again.truth.episodes.size(), result().truth.episodes.size());
}

TEST_F(TraceGeneratorTest, SeedChangesTrace) {
  ScenarioConfig other = config();
  other.seed = 999;
  const Scenario other_scenario(other);
  const TraceResult other_result = generate_trace(other_scenario);
  EXPECT_NE(other_result.records.size(), result().records.size());
}

TEST_F(TraceGeneratorTest, AttackEpisodesLeaveTraffic) {
  // Loud episodes must contribute records overlapping their window.
  auto records = result().records;
  const auto trace = netflow::aggregate_windows(
      std::move(records), scenario().vips().cloud_space(),
      &scenario().tds().as_prefix_set());
  std::size_t loud = 0;
  std::size_t with_traffic = 0;
  for (const auto& e : result().truth.episodes) {
    if (e.peak_true_pps < 50'000.0) continue;
    ++loud;
    const auto series = trace.series(e.vip, e.direction);
    for (const auto& w : series) {
      if (w.minute >= e.start && w.minute < e.end) {
        ++with_traffic;
        break;
      }
    }
  }
  if (loud > 0) EXPECT_EQ(with_traffic, loud);
}

TEST(ScenarioConfigTest, PresetsAreSane) {
  const auto smoke = ScenarioConfig::smoke();
  EXPECT_GT(smoke.vips.vip_count, 0u);
  EXPECT_GT(smoke.days, 0);
  const auto paper = ScenarioConfig::paper_scale();
  EXPECT_GT(paper.vips.vip_count, smoke.vips.vip_count);
  EXPECT_EQ(paper.sampling, 4096u);
  EXPECT_EQ(paper.total_minutes(), paper.days * 1440);
}

TEST(AttackParamsTest, TablesCoverEveryTypeAndDirection) {
  for (AttackType t : kAllAttackTypes) {
    for (netflow::Direction d :
         {netflow::Direction::kInbound, netflow::Direction::kOutbound}) {
      const AttackParams& p = default_attack_params(t, d);
      EXPECT_GT(p.session_share, 0.0) << to_string(t);
      EXPECT_GT(p.peak_pps_median, 0.0);
      EXPECT_GE(p.peak_pps_cap, p.peak_pps_median);
      EXPECT_GT(p.duration_median, 0.0);
      EXPECT_GE(p.duration_cap, p.duration_median);
      EXPECT_GT(p.host_count_cap, 0.0);
      EXPECT_GE(p.p_single, 0.0);
      EXPECT_LE(p.p_single, 1.0);
    }
  }
}

TEST(AttackParamsTest, PaperRatiosEncoded) {
  using netflow::Direction;
  // §3.1 outbound/inbound ratios. Outbound SYN dominance is delivered by
  // the scripted serial attacker and multi-vector companions rather than
  // the generic session share, so the table ratio is asserted on UDP.
  const double udp_ratio =
      default_attack_params(AttackType::kUdpFlood, Direction::kOutbound).session_share /
      default_attack_params(AttackType::kUdpFlood, Direction::kInbound).session_share;
  EXPECT_GT(udp_ratio, 1.2);
  const double bf_ratio =
      default_attack_params(AttackType::kBruteForce, Direction::kOutbound).session_share /
      default_attack_params(AttackType::kBruteForce, Direction::kInbound).session_share;
  EXPECT_GT(bf_ratio, 2.0);
  // Port scans are mostly inbound.
  EXPECT_GT(default_attack_params(AttackType::kPortScan, Direction::kInbound)
                .session_share,
            default_attack_params(AttackType::kPortScan, Direction::kOutbound)
                .session_share);
  // SYN floods are spoofed ~67% inbound, never outbound.
  EXPECT_NEAR(default_attack_params(AttackType::kSynFlood, Direction::kInbound)
                  .spoofed_fraction,
              0.671, 1e-9);
  EXPECT_DOUBLE_EQ(
      default_attack_params(AttackType::kSynFlood, Direction::kOutbound)
          .spoofed_fraction,
      0.0);
}

}  // namespace
}  // namespace dm::sim
