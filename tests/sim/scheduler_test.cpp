#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/trace_generator.h"

namespace dm::sim {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  static ScenarioConfig config() {
    ScenarioConfig c = ScenarioConfig::smoke();
    c.vips.vip_count = 200;
    c.days = 3;
    c.seed = 314;
    return c;
  }
  static const Scenario& scenario() {
    static const Scenario s{config()};
    return s;
  }
  static const GroundTruth& truth() {
    static const GroundTruth t = [] {
      EpisodeScheduler scheduler(scenario().config(), scenario().vips(),
                                 scenario().ases(), scenario().tds());
      return scheduler.schedule();
    }();
    return t;
  }
};

TEST_F(SchedulerTest, EpisodesAreWellFormed) {
  const util::Minute end = scenario().config().total_minutes();
  ASSERT_GT(truth().episodes.size(), 50u);
  std::set<std::uint32_t> ids;
  for (const auto& e : truth().episodes) {
    EXPECT_TRUE(ids.insert(e.id).second) << "duplicate episode id";
    EXPECT_GE(e.start, 0);
    EXPECT_LT(e.start, end);
    EXPECT_GT(e.end, e.start);
    EXPECT_LE(e.end, end);
    EXPECT_GT(e.peak_true_pps, 0.0);
    EXPECT_TRUE(!e.remote_hosts.empty() || e.spoofed_sources);
    if (!e.remote_weights.empty()) {
      EXPECT_EQ(e.remote_weights.size(), e.remote_hosts.size());
    }
    // Every episode's VIP is a real VIP.
    EXPECT_NE(scenario().vips().lookup(e.vip), nullptr);
  }
}

TEST_F(SchedulerTest, AllAttackTypesAppear) {
  std::set<int> types;
  for (const auto& e : truth().episodes) {
    types.insert(static_cast<int>(e.type));
  }
  EXPECT_EQ(types.size(), kAttackTypeCount);
}

TEST_F(SchedulerTest, RemoteHostsAvoidBlacklistForNonTds) {
  for (const auto& e : truth().episodes) {
    if (e.type == AttackType::kTds) continue;
    for (const auto host : e.remote_hosts) {
      EXPECT_FALSE(scenario().tds().contains(host))
          << to_string(e.type) << " attack host collides with the blacklist";
    }
  }
}

TEST_F(SchedulerTest, TdsHostsComeFromBlacklist) {
  for (const auto& e : truth().episodes) {
    if (e.type != AttackType::kTds) continue;
    for (const auto host : e.remote_hosts) {
      EXPECT_TRUE(scenario().tds().contains(host));
    }
  }
}

TEST_F(SchedulerTest, SpoofedOnlyOnInboundSynFloods) {
  std::size_t spoofed = 0;
  std::size_t inbound_syn = 0;
  for (const auto& e : truth().episodes) {
    if (e.spoofed_sources) {
      EXPECT_EQ(e.type, AttackType::kSynFlood);
      EXPECT_EQ(e.direction, netflow::Direction::kInbound);
      ++spoofed;
    }
    if (e.type == AttackType::kSynFlood &&
        e.direction == netflow::Direction::kInbound) {
      ++inbound_syn;
    }
  }
  if (inbound_syn >= 8) {
    // ~67% spoofed (§6.1); binomial noise at small counts.
    EXPECT_GT(spoofed, inbound_syn / 4);
  }
}

TEST_F(SchedulerTest, RepeatAttacksRespectTimeoutSeparation) {
  std::map<std::tuple<std::uint32_t, int, int>, std::vector<const AttackEpisode*>>
      per_key;
  for (const auto& e : truth().episodes) {
    per_key[{e.vip.value(), static_cast<int>(e.type),
             static_cast<int>(e.direction)}]
        .push_back(&e);
  }
  for (auto& [key, list] : per_key) {
    std::sort(list.begin(), list.end(),
              [](const AttackEpisode* a, const AttackEpisode* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 1; i < list.size(); ++i) {
      const util::Minute gap = list[i]->start - list[i - 1]->end;
      // Distinct planned incidents must not merge under the type timeout.
      // Campaign/scripted overlaps are allowed to touch, but never overlap
      // twice the other way.
      if (gap > 0) {
        EXPECT_GT(gap, inactive_timeout(list[i]->type))
            << to_string(list[i]->type);
      }
    }
  }
}

TEST_F(SchedulerTest, CampaignsShareTypeAndStartWindow) {
  std::map<std::uint32_t, std::vector<const AttackEpisode*>> campaigns;
  for (const auto& e : truth().episodes) {
    if (e.campaign_id != 0) campaigns[e.campaign_id].push_back(&e);
  }
  ASSERT_FALSE(campaigns.empty());
  std::size_t synchronized_total = 0;
  std::size_t synchronized_hits = 0;
  for (const auto& [id, members] : campaigns) {
    util::Minute first_start = members.front()->start;
    std::set<int> types;
    for (const auto* e : members) {
      types.insert(static_cast<int>(e->type));
      first_start = std::min(first_start, e->start);
    }
    // Multi-vector companions may share the campaign id; the campaign's own
    // episodes share one type.
    EXPECT_LE(types.size(), 3u) << "campaign " << id;
    // The scripted spam eruption is deliberately diffuse over hours (§3.1);
    // every other campaign's initial wave fits the 5-minute window. Slot
    // reservation may drift a member that collided with an earlier attack
    // on the same VIP, so assert on the aggregate below.
    if (members.front()->type == AttackType::kSpam) continue;
    if (members.size() < 2) continue;
    std::size_t in_window = 0;
    for (const auto* e : members) {
      if (e->start - first_start < 5) ++in_window;
    }
    synchronized_total += 1;
    if (in_window >= 2) synchronized_hits += 1;
  }
  ASSERT_GT(synchronized_total, 0u);
  EXPECT_GE(static_cast<double>(synchronized_hits) /
                static_cast<double>(synchronized_total),
            0.7);
}

TEST_F(SchedulerTest, MultiVectorGroupsHaveMultipleTypes) {
  std::map<std::uint32_t, std::set<int>> groups;
  std::map<std::uint32_t, std::set<std::uint32_t>> group_vips;
  for (const auto& e : truth().episodes) {
    if (e.multi_vector_group != 0) {
      groups[e.multi_vector_group].insert(static_cast<int>(e.type));
      group_vips[e.multi_vector_group].insert(e.vip.value());
    }
  }
  for (const auto& [id, types] : groups) {
    EXPECT_GE(types.size(), 2u) << "multi-vector group " << id;
    EXPECT_EQ(group_vips[id].size(), 1u) << "multi-vector spans VIPs";
  }
}

TEST_F(SchedulerTest, ScriptedCaseStudyPresent) {
  // The dormant partner VIP gets a long inbound RDP brute-force and a
  // later outbound UDP flood.
  const AttackEpisode* bf = nullptr;
  const AttackEpisode* udp = nullptr;
  for (const auto& e : truth().episodes) {
    if (e.type == AttackType::kBruteForce &&
        e.direction == netflow::Direction::kInbound &&
        e.remote_hosts.size() == 85) {
      bf = &e;
    }
  }
  ASSERT_NE(bf, nullptr) << "case-study brute-force missing";
  EXPECT_EQ(bf->target_port, netflow::ports::kRdp);
  ASSERT_EQ(bf->remote_weights.size(), 85u);
  // 70.3% of the weight on the first three hosts.
  double top3 = bf->remote_weights[0] + bf->remote_weights[1] + bf->remote_weights[2];
  double total = 0.0;
  for (double w : bf->remote_weights) total += w;
  EXPECT_NEAR(top3 / total, 0.703, 0.01);

  for (const auto& e : truth().episodes) {
    if (e.type == AttackType::kUdpFlood &&
        e.direction == netflow::Direction::kOutbound && e.vip == bf->vip) {
      udp = &e;
    }
  }
  ASSERT_NE(udp, nullptr) << "case-study outbound UDP missing";
  EXPECT_GT(udp->start, bf->start);
  EXPECT_EQ(udp->remote_hosts.size(), 491u);
  EXPECT_NEAR(udp->peak_true_pps, 23'000.0, 1.0);
}

TEST_F(SchedulerTest, ScriptedSubnetScanPresent) {
  // One brute-force campaign from exactly two hosts across ~66 VIPs.
  std::map<std::uint32_t, std::set<std::uint32_t>> bf_campaign_vips;
  std::map<std::uint32_t, std::size_t> bf_campaign_hosts;
  for (const auto& e : truth().episodes) {
    if (e.type != AttackType::kBruteForce || e.campaign_id == 0) continue;
    if (e.remote_hosts.size() != 2) continue;
    bf_campaign_vips[e.campaign_id].insert(e.vip.value());
  }
  std::size_t biggest = 0;
  for (const auto& [id, vips] : bf_campaign_vips) {
    biggest = std::max(biggest, vips.size());
  }
  EXPECT_GE(biggest, 60u);
}

TEST_F(SchedulerTest, SerialAttackerPresent) {
  // One VIP fires >100 short outbound SYN floods.
  std::map<std::uint32_t, int> syn_counts;
  for (const auto& e : truth().episodes) {
    if (e.type == AttackType::kSynFlood &&
        e.direction == netflow::Direction::kOutbound) {
      syn_counts[e.vip.value()] += 1;
    }
  }
  int max_count = 0;
  for (const auto& [vip, n] : syn_counts) max_count = std::max(max_count, n);
  EXPECT_GE(max_count, 100);
}

TEST_F(SchedulerTest, DeterministicForSeed) {
  EpisodeScheduler again(scenario().config(), scenario().vips(),
                         scenario().ases(), scenario().tds());
  const GroundTruth second = again.schedule();
  ASSERT_EQ(second.episodes.size(), truth().episodes.size());
  for (std::size_t i = 0; i < second.episodes.size(); ++i) {
    EXPECT_EQ(second.episodes[i].start, truth().episodes[i].start);
    EXPECT_EQ(second.episodes[i].vip, truth().episodes[i].vip);
    EXPECT_EQ(second.episodes[i].type, truth().episodes[i].type);
  }
}

}  // namespace
}  // namespace dm::sim
