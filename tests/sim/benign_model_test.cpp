#include "sim/benign_model.h"

#include <gtest/gtest.h>

#include "sim/trace_generator.h"

namespace dm::sim {
namespace {

class BenignModelTest : public ::testing::Test {
 protected:
  static ScenarioConfig config() {
    ScenarioConfig c = ScenarioConfig::smoke();
    c.vips.vip_count = 60;
    c.days = 1;
    return c;
  }
  static const Scenario& scenario() {
    static const Scenario s{config()};
    return s;
  }
  static const BenignTrafficModel& model() {
    static const BenignTrafficModel m{scenario().config(), scenario().vips(),
                                      scenario().ases(), 99,
                                      &scenario().tds()};
    return m;
  }
};

TEST_F(BenignModelTest, PoolsAreNonEmptyAndClean) {
  for (std::uint32_t v = 0; v < scenario().vips().size(); ++v) {
    const auto pool = model().pool_of(v);
    EXPECT_GE(pool.size(), 8u);
    for (const auto host : pool) {
      EXPECT_FALSE(scenario().tds().contains(host))
          << "benign client on the TDS blacklist";
      EXPECT_FALSE(scenario().vips().cloud_space().contains(host))
          << "benign client inside the cloud";
    }
  }
}

TEST_F(BenignModelTest, EmitsOnlyWellFormedRecords) {
  const netflow::PacketSampler sampler(64);  // dense sampling for coverage
  util::Rng rng(1);
  std::vector<netflow::FlowRecord> out;
  for (std::uint32_t v = 0; v < scenario().vips().size(); ++v) {
    for (util::Minute m = 0; m < 30; ++m) {
      model().emit_minute(v, m, sampler, rng, out);
    }
  }
  ASSERT_FALSE(out.empty());
  for (const auto& r : out) {
    EXPECT_GE(r.packets, 1u);
    EXPECT_GT(r.bytes, 0u);
    // Exactly one endpoint is a VIP.
    const bool src_cloud = scenario().vips().cloud_space().contains(r.src_ip);
    const bool dst_cloud = scenario().vips().cloud_space().contains(r.dst_ip);
    EXPECT_NE(src_cloud, dst_cloud);
    if (r.protocol != netflow::Protocol::kTcp) {
      EXPECT_EQ(r.tcp_flags, netflow::TcpFlags::kNone);
    } else {
      EXPECT_FALSE(netflow::is_illegal(r.tcp_flags))
          << "benign traffic with illegal flags would trip the signature "
             "detector";
    }
  }
}

TEST_F(BenignModelTest, InactiveVipsStaySilent) {
  const netflow::PacketSampler sampler(1);
  util::Rng rng(2);
  // Find a VIP with delayed activation (trace_minutes-driven churn).
  for (std::uint32_t v = 0; v < scenario().vips().size(); ++v) {
    const auto& vip = scenario().vips().all()[v];
    if (vip.active_from <= 0) continue;
    std::vector<netflow::FlowRecord> out;
    model().emit_minute(v, vip.active_from - 1, sampler, rng, out);
    EXPECT_TRUE(out.empty());
    return;
  }
  GTEST_SKIP() << "no churned VIP in this configuration";
}

TEST_F(BenignModelTest, TrafficScalesWithPopularity) {
  // The most popular VIP should emit far more sampled packets than the
  // least popular over the same period.
  const auto vips = scenario().vips().all();
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
  for (std::uint32_t v = 0; v < vips.size(); ++v) {
    if (vips[v].active_from > 0) continue;
    if (vips[v].popularity > vips[hi].popularity) hi = v;
    if (vips[v].popularity < vips[lo].popularity) lo = v;
  }
  const netflow::PacketSampler sampler(16);
  util::Rng rng(3);
  std::vector<netflow::FlowRecord> hi_out;
  std::vector<netflow::FlowRecord> lo_out;
  for (util::Minute m = 0; m < 120; ++m) {
    model().emit_minute(hi, m, sampler, rng, hi_out);
    model().emit_minute(lo, m, sampler, rng, lo_out);
  }
  std::uint64_t hi_pkts = 0;
  std::uint64_t lo_pkts = 0;
  for (const auto& r : hi_out) hi_pkts += r.packets;
  for (const auto& r : lo_out) lo_pkts += r.packets;
  EXPECT_GT(hi_pkts, lo_pkts);
}

TEST(DiurnalFactor, OscillatesAroundOne) {
  double lo = 10.0;
  double hi = 0.0;
  for (util::Minute m = 0; m < util::kMinutesPerDay; m += 10) {
    const double f = diurnal_factor(m, cloud::GeoRegion::kNorthAmericaEast);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  EXPECT_NEAR(lo, 0.55, 0.02);
  EXPECT_NEAR(hi, 1.45, 0.02);
}

TEST(DiurnalFactor, PeaksInLocalAfternoon) {
  // 15:00 local == 20:00 UTC for NA-East (UTC-5).
  const double peak =
      diurnal_factor(20 * 60, cloud::GeoRegion::kNorthAmericaEast);
  const double trough =
      diurnal_factor(8 * 60, cloud::GeoRegion::kNorthAmericaEast);
  EXPECT_GT(peak, 1.4);
  EXPECT_LT(trough, 0.6);
}

TEST(DiurnalFactor, RegionsAreShifted) {
  const util::Minute m = 12 * 60;
  EXPECT_NE(diurnal_factor(m, cloud::GeoRegion::kNorthAmericaWest),
            diurnal_factor(m, cloud::GeoRegion::kEastAsia));
}

}  // namespace
}  // namespace dm::sim
