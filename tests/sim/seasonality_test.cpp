// §3.1 seasonality: the holiday-season configuration must raise inbound
// flood prevalence without touching the outbound side.
#include <gtest/gtest.h>

#include "sim/scheduler.h"
#include "sim/trace_generator.h"

namespace dm::sim {
namespace {

std::size_t flood_count(const GroundTruth& truth, netflow::Direction dir) {
  std::size_t floods = 0;
  for (const auto& e : truth.episodes) {
    if (e.direction == dir && is_flood(e.type)) ++floods;
  }
  return floods;
}

GroundTruth schedule_with_seasonality(double boost) {
  auto config = ScenarioConfig::smoke();
  config.vips.vip_count = 250;
  config.days = 3;
  config.seed = 2024;  // identical seed: only the boost differs
  config.inbound_flood_seasonality = boost;
  const Scenario scenario(config);
  EpisodeScheduler scheduler(config, scenario.vips(), scenario.ases(),
                             scenario.tds());
  return scheduler.schedule();
}

TEST(Seasonality, HolidayBoostRaisesInboundFloods) {
  const auto may = schedule_with_seasonality(1.0);
  const auto december = schedule_with_seasonality(3.0);
  const auto may_floods = flood_count(may, netflow::Direction::kInbound);
  const auto dec_floods = flood_count(december, netflow::Direction::kInbound);
  ASSERT_GT(may_floods, 0u);
  EXPECT_GT(static_cast<double>(dec_floods),
            1.4 * static_cast<double>(may_floods))
      << may_floods << " -> " << dec_floods;
}

TEST(Seasonality, OutboundUnaffectedByDesign) {
  // The boost only retargets inbound session *shares*; outbound session
  // counts come from an independent Poisson stream, so outbound floods stay
  // within ordinary sampling noise.
  const auto may = schedule_with_seasonality(1.0);
  const auto december = schedule_with_seasonality(3.0);
  const auto may_out = flood_count(may, netflow::Direction::kOutbound);
  const auto dec_out = flood_count(december, netflow::Direction::kOutbound);
  ASSERT_GT(may_out, 0u);
  EXPECT_NEAR(static_cast<double>(dec_out), static_cast<double>(may_out),
              0.6 * static_cast<double>(may_out));
}

TEST(Seasonality, PresetEncodesTheSurge) {
  const auto holiday = ScenarioConfig::holiday_season();
  EXPECT_GT(holiday.inbound_flood_seasonality, 1.5);
  EXPECT_DOUBLE_EQ(ScenarioConfig::paper_scale().inbound_flood_seasonality, 1.0);
}

}  // namespace
}  // namespace dm::sim
