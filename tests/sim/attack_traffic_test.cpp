#include "sim/attack_traffic.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/trace_generator.h"

namespace dm::sim {
namespace {

class AttackTrafficTest : public ::testing::Test {
 protected:
  static const Scenario& scenario() {
    static const Scenario s{[] {
      ScenarioConfig c = ScenarioConfig::smoke();
      c.vips.vip_count = 40;
      c.days = 1;
      return c;
    }()};
    return s;
  }

  static AttackEpisode episode(AttackType type, netflow::Direction dir,
                               double pps = 100'000.0) {
    AttackEpisode e;
    e.type = type;
    e.direction = dir;
    e.vip = scenario().vips().all()[0].vip;
    e.start = 10;
    e.end = 20;
    e.peak_true_pps = pps;
    e.ramp_up_minutes = 0.3;
    e.target_port = 80;
    util::Rng rng(1);
    for (int i = 0; i < 20; ++i) {
      e.remote_hosts.push_back(
          scenario().ases().host_in_class(cloud::AsClass::kSmallIsp, rng));
    }
    return e;
  }

  static std::vector<netflow::FlowRecord> emit(const AttackEpisode& e,
                                               util::Minute minute,
                                               std::uint32_t sampling = 4096) {
    const AttackTrafficModel model(scenario().ases(), scenario().tds());
    const netflow::PacketSampler sampler(sampling);
    util::Rng rng(7);
    std::vector<netflow::FlowRecord> out;
    model.emit_minute(e, minute, sampler, rng, out);
    return out;
  }
};

TEST_F(AttackTrafficTest, InactiveMinutesEmitNothing) {
  const auto e = episode(AttackType::kUdpFlood, netflow::Direction::kInbound);
  EXPECT_TRUE(emit(e, 5).empty());
  EXPECT_TRUE(emit(e, 20).empty());
}

TEST_F(AttackTrafficTest, SynFloodRecordsArePureSyn) {
  const auto e = episode(AttackType::kSynFlood, netflow::Direction::kInbound);
  const auto records = emit(e, 15);
  ASSERT_FALSE(records.empty());
  for (const auto& r : records) {
    EXPECT_EQ(r.protocol, netflow::Protocol::kTcp);
    EXPECT_TRUE(netflow::is_pure_syn(r.tcp_flags));
    EXPECT_EQ(r.dst_ip, e.vip);
    EXPECT_EQ(r.dst_port, 80);
  }
}

TEST_F(AttackTrafficTest, SpoofedFloodHasUniqueSources) {
  auto e = episode(AttackType::kSynFlood, netflow::Direction::kInbound,
                   500'000.0);
  e.spoofed_sources = true;
  e.remote_hosts.clear();
  const auto records = emit(e, 15);
  ASSERT_GT(records.size(), 100u);
  std::set<std::uint32_t> sources;
  for (const auto& r : records) sources.insert(r.src_ip.value());
  // Spoofed sources are fresh per packet: virtually all distinct.
  EXPECT_GT(sources.size(), records.size() * 9 / 10);
}

TEST_F(AttackTrafficTest, JunoBugFixesSourcePorts) {
  auto e = episode(AttackType::kSynFlood, netflow::Direction::kInbound,
                   500'000.0);
  e.spoofed_sources = true;
  e.fixed_source_ports = true;
  const auto records = emit(e, 15);
  ASSERT_FALSE(records.empty());
  for (const auto& r : records) {
    EXPECT_TRUE(r.src_port == 1024 || r.src_port == 3072) << r.src_port;
  }
}

TEST_F(AttackTrafficTest, FloodAggregatesPerSource) {
  const auto e = episode(AttackType::kUdpFlood, netflow::Direction::kInbound,
                         2'000'000.0);
  const auto records = emit(e, 15);
  // Dense flood over 20 hosts: at most one record per host.
  EXPECT_LE(records.size(), e.remote_hosts.size());
  std::uint64_t packets = 0;
  for (const auto& r : records) {
    EXPECT_EQ(r.protocol, netflow::Protocol::kUdp);
    packets += r.packets;
  }
  // ~2M pps * 60 / 4096 = ~29K sampled packets.
  EXPECT_NEAR(static_cast<double>(packets), 29'300.0, 6'000.0);
}

TEST_F(AttackTrafficTest, IcmpFloodHasNoPorts) {
  const auto e = episode(AttackType::kIcmpFlood, netflow::Direction::kOutbound);
  for (const auto& r : emit(e, 15)) {
    EXPECT_EQ(r.protocol, netflow::Protocol::kIcmp);
    EXPECT_EQ(r.src_port, 0);
    EXPECT_EQ(r.dst_port, 0);
    EXPECT_EQ(r.src_ip, e.vip);
  }
}

TEST_F(AttackTrafficTest, DnsReflectionComesFromPort53) {
  const auto e =
      episode(AttackType::kDnsReflection, netflow::Direction::kInbound);
  const auto records = emit(e, 15);
  ASSERT_FALSE(records.empty());
  for (const auto& r : records) {
    EXPECT_EQ(r.protocol, netflow::Protocol::kUdp);
    EXPECT_EQ(r.src_port, netflow::ports::kDns);
    EXPECT_EQ(r.dst_ip, e.vip);
    // Full-size reflection payloads.
    EXPECT_EQ(r.bytes, r.packets * 1500u);
  }
}

TEST_F(AttackTrafficTest, BruteForceConnectionsAreDistinctFlows) {
  auto e = episode(AttackType::kBruteForce, netflow::Direction::kInbound,
                   50'000.0);
  e.target_port = netflow::ports::kSsh;
  const auto records = emit(e, 15);
  ASSERT_GT(records.size(), 50u);
  std::set<std::pair<std::uint32_t, std::uint16_t>> flows;
  for (const auto& r : records) {
    EXPECT_EQ(r.dst_port, netflow::ports::kSsh);
    flows.insert({r.src_ip.value(), r.src_port});
  }
  // Each record is its own connection (unique source/port pair almost always).
  EXPECT_GT(flows.size(), records.size() * 8 / 10);
}

TEST_F(AttackTrafficTest, SpamTargetsSmtp) {
  auto e = episode(AttackType::kSpam, netflow::Direction::kOutbound, 20'000.0);
  e.target_port = netflow::ports::kSmtp;
  for (const auto& r : emit(e, 15)) {
    EXPECT_EQ(r.src_ip, e.vip);
    EXPECT_EQ(r.dst_port, netflow::ports::kSmtp);
  }
}

TEST_F(AttackTrafficTest, TdsUsesBlacklistPortRange) {
  auto e = episode(AttackType::kTds, netflow::Direction::kOutbound, 50'000.0);
  e.remote_hosts.clear();
  util::Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    e.remote_hosts.push_back(scenario().tds().random_host(rng));
  }
  const auto records = emit(e, 15);
  ASSERT_FALSE(records.empty());
  for (const auto& r : records) {
    EXPECT_GE(r.dst_port, 1024);
    EXPECT_LE(r.dst_port, 5000);
    EXPECT_TRUE(scenario().tds().contains(r.dst_ip));
  }
}

TEST_F(AttackTrafficTest, PortScanEmitsIllegalFlags) {
  auto e = episode(AttackType::kPortScan, netflow::Direction::kInbound,
                   100'000.0);
  e.scan_kind = PortScanKind::kNull;
  e.target_port = 0;
  std::set<std::uint16_t> ports;
  for (const auto& r : emit(e, 15)) {
    EXPECT_EQ(r.tcp_flags, netflow::TcpFlags::kNone);
    ports.insert(r.dst_port);
  }
  EXPECT_GT(ports.size(), 100u);  // scanning many ports
}

TEST_F(AttackTrafficTest, XmasScanFlags) {
  auto e = episode(AttackType::kPortScan, netflow::Direction::kInbound,
                   50'000.0);
  e.scan_kind = PortScanKind::kXmas;
  for (const auto& r : emit(e, 15)) {
    EXPECT_TRUE(netflow::is_xmas_scan(r.tcp_flags));
  }
}

TEST_F(AttackTrafficTest, WeightedHostsDominate) {
  auto e = episode(AttackType::kBruteForce, netflow::Direction::kInbound,
                   200'000.0);
  e.remote_weights.assign(e.remote_hosts.size(), 1.0);
  e.remote_weights[0] = 1'000.0;  // one host sends almost everything
  std::uint64_t host0 = 0;
  std::uint64_t total = 0;
  for (const auto& r : emit(e, 15)) {
    total += r.packets;
    if (r.src_ip == e.remote_hosts[0]) host0 += r.packets;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(host0) / static_cast<double>(total), 0.9);
}

TEST_F(AttackTrafficTest, SamplingThinsLowRateAttacks) {
  // A 300 pps attack yields ~4.4 sampled packets/min: sometimes nothing.
  const auto e =
      episode(AttackType::kUdpFlood, netflow::Direction::kInbound, 300.0);
  const AttackTrafficModel model(scenario().ases(), scenario().tds());
  const netflow::PacketSampler sampler(4096);
  int empty_minutes = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    util::Rng rng(seed);
    std::vector<netflow::FlowRecord> out;
    model.emit_minute(e, 15, sampler, rng, out);
    if (out.empty()) ++empty_minutes;
  }
  EXPECT_GT(empty_minutes, 0);
  EXPECT_LT(empty_minutes, 200);
}

}  // namespace
}  // namespace dm::sim
