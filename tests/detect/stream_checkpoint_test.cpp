// Checkpoint/restore acceptance: a monitor that ingests half a feed,
// checkpoints, restores into a fresh monitor, and ingests the rest must be
// byte-identical (checkpoint bytes and emitted incidents) to one that ran
// uninterrupted.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <tuple>
#include <vector>

#include "detect/stream.h"
#include "fault/fault.h"
#include "sim/trace_generator.h"
#include "util/error.h"

namespace dm::detect {
namespace {

using netflow::FlowRecord;

netflow::PrefixSet sim_cloud_space() {
  netflow::PrefixSet set;
  set.add(netflow::Prefix(netflow::IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

std::vector<FlowRecord> scenario_feed(unsigned thread_count) {
  sim::ScenarioConfig config = sim::ScenarioConfig::smoke();
  config.thread_count = thread_count;
  auto records = sim::generate_trace(sim::Scenario(config)).records;
  std::stable_sort(records.begin(), records.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.minute < b.minute;
                   });
  return records;
}

using IncidentKey = std::tuple<std::uint32_t, int, int, util::Minute,
                               util::Minute, std::uint32_t, std::uint64_t,
                               std::uint64_t, std::uint32_t, util::Minute>;

IncidentKey key_of(const AttackIncident& inc) {
  return {inc.vip.value(),
          static_cast<int>(inc.direction),
          static_cast<int>(inc.type),
          inc.start,
          inc.end,
          inc.active_minutes,
          inc.total_sampled_packets,
          inc.peak_sampled_ppm,
          inc.peak_unique_remotes,
          inc.ramp_up_minutes};
}

StreamMonitor make_monitor(std::vector<AttackIncident>* incidents,
                           StreamConfig stream = {}) {
  return StreamMonitor(
      sim_cloud_space(), nullptr, DetectionConfig{}, TimeoutTable::paper(),
      nullptr,
      [incidents](const AttackIncident& inc) { incidents->push_back(inc); },
      stream);
}

std::string checkpoint_bytes(const StreamMonitor& monitor) {
  std::ostringstream out;
  monitor.checkpoint(out);
  return out.str();
}

class StreamCheckpointThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(StreamCheckpointThreads, ResumedRunMatchesUninterrupted) {
  const auto feed = scenario_feed(GetParam());
  ASSERT_GT(feed.size(), 1000u);
  const std::size_t half = feed.size() / 2;

  // Uninterrupted reference.
  std::vector<AttackIncident> ref_incidents;
  StreamMonitor reference = make_monitor(&ref_incidents);
  for (const auto& r : feed) reference.ingest(r);
  const std::string ref_state = checkpoint_bytes(reference);

  // Interrupted: ingest half, checkpoint, restore into a fresh monitor
  // (incidents already emitted before the checkpoint belong to the first
  // process), ingest the rest.
  std::vector<AttackIncident> first_half_incidents;
  StreamMonitor before = make_monitor(&first_half_incidents);
  for (std::size_t i = 0; i < half; ++i) before.ingest(feed[i]);
  std::istringstream saved(checkpoint_bytes(before));

  std::vector<AttackIncident> resumed_incidents;
  StreamMonitor resumed = make_monitor(&resumed_incidents);
  resumed.restore(saved);
  for (std::size_t i = half; i < feed.size(); ++i) resumed.ingest(feed[i]);

  // Byte-identical monitor state...
  EXPECT_EQ(checkpoint_bytes(resumed), ref_state);
  EXPECT_EQ(resumed.records_ingested(), reference.records_ingested());
  EXPECT_EQ(resumed.records_late(), reference.records_late());
  EXPECT_EQ(resumed.records_unclassifiable(),
            reference.records_unclassifiable());
  EXPECT_EQ(resumed.windows_closed(), reference.windows_closed());
  EXPECT_EQ(resumed.alerts(), reference.alerts());

  // ...and identical incident output (first process + resumed == reference).
  reference.finish();
  resumed.finish();
  std::vector<IncidentKey> ref_keys;
  for (const auto& inc : ref_incidents) ref_keys.push_back(key_of(inc));
  std::vector<IncidentKey> split_keys;
  for (const auto& inc : first_half_incidents) split_keys.push_back(key_of(inc));
  for (const auto& inc : resumed_incidents) split_keys.push_back(key_of(inc));
  std::sort(ref_keys.begin(), ref_keys.end());
  std::sort(split_keys.begin(), split_keys.end());
  EXPECT_EQ(split_keys, ref_keys);
}

INSTANTIATE_TEST_SUITE_P(Threads, StreamCheckpointThreads,
                         ::testing::Values(1u, 2u, 8u));

TEST(StreamCheckpoint, ResumedRunMatchesUninterruptedOnDegradedFeed) {
  auto feed = scenario_feed(1);
  fault::RecordPlan plan;
  plan.reorder_window = 64;
  plan.duplicate_prob = 0.01;
  const auto degraded = fault::FaultInjector(5).degrade(feed, plan);

  // Reorder tolerance: the per-record displacement bound translates to a
  // minute lag of at most the largest backward minute step in the feed.
  util::Minute max_lag = 0;
  util::Minute max_seen = degraded.empty() ? 0 : degraded.front().minute;
  for (const auto& r : degraded) {
    max_seen = std::max(max_seen, r.minute);
    max_lag = std::max(max_lag, max_seen - r.minute);
  }
  StreamConfig stream;
  stream.reorder_lag = max_lag;
  stream.suppress_duplicates = true;

  std::vector<AttackIncident> ref_incidents;
  StreamMonitor reference = make_monitor(&ref_incidents, stream);
  for (const auto& r : degraded) reference.ingest(r);

  const std::size_t half = degraded.size() / 2;
  std::vector<AttackIncident> split_incidents;
  StreamMonitor before = make_monitor(&split_incidents, stream);
  for (std::size_t i = 0; i < half; ++i) before.ingest(degraded[i]);
  std::istringstream saved(checkpoint_bytes(before));
  StreamMonitor resumed = make_monitor(&split_incidents, stream);
  resumed.restore(saved);
  for (std::size_t i = half; i < degraded.size(); ++i) resumed.ingest(degraded[i]);

  EXPECT_EQ(checkpoint_bytes(resumed), checkpoint_bytes(reference));
  EXPECT_EQ(resumed.records_duplicate(), reference.records_duplicate());
  EXPECT_GT(resumed.records_duplicate(), 0u);
}

TEST(StreamCheckpoint, RestoreRejectsDamagedCheckpoints) {
  std::vector<AttackIncident> incidents;
  StreamMonitor monitor = make_monitor(&incidents);
  FlowRecord r;
  r.minute = 10;
  r.src_ip = netflow::IPv4::from_octets(9, 9, 9, 9);
  r.dst_ip = netflow::IPv4::from_octets(100, 64, 0, 1);
  r.packets = 5;
  r.bytes = 200;
  monitor.ingest(r);
  std::string bytes = checkpoint_bytes(monitor);

  {  // bad magic
    std::string mangled = bytes;
    mangled[0] = 'X';
    std::istringstream in(mangled);
    StreamMonitor target = make_monitor(&incidents);
    EXPECT_THROW(target.restore(in), dm::FormatError);
  }
  {  // flipped payload bit -> CRC mismatch
    std::string mangled = bytes;
    mangled[mangled.size() / 2] ^= 0x10;
    std::istringstream in(mangled);
    StreamMonitor target = make_monitor(&incidents);
    EXPECT_THROW(target.restore(in), dm::FormatError);
  }
  {  // truncation
    std::istringstream in(bytes.substr(0, bytes.size() - 3));
    StreamMonitor target = make_monitor(&incidents);
    EXPECT_THROW(target.restore(in), dm::FormatError);
  }
  // The pristine bytes still restore after all the failed attempts.
  std::istringstream in(bytes);
  StreamMonitor target = make_monitor(&incidents);
  target.restore(in);
  EXPECT_EQ(checkpoint_bytes(target), bytes);
  EXPECT_EQ(target.records_ingested(), 1u);
}

TEST(StreamCheckpoint, CheckpointBytesAreDeterministic) {
  const auto feed = scenario_feed(1);
  std::vector<AttackIncident> a_inc;
  std::vector<AttackIncident> b_inc;
  StreamMonitor a = make_monitor(&a_inc);
  StreamMonitor b = make_monitor(&b_inc);
  for (const auto& r : feed) {
    a.ingest(r);
    b.ingest(r);
  }
  EXPECT_EQ(checkpoint_bytes(a), checkpoint_bytes(b));
}

}  // namespace
}  // namespace dm::detect
