#include "detect/correlator.h"

#include <gtest/gtest.h>

namespace dm::detect {
namespace {

using netflow::Direction;
using sim::AttackType;

const netflow::IPv4 kVipA = netflow::IPv4::from_octets(100, 64, 0, 1);
const netflow::IPv4 kVipB = netflow::IPv4::from_octets(100, 64, 0, 2);
const netflow::IPv4 kVipC = netflow::IPv4::from_octets(100, 64, 0, 3);

AttackIncident incident(netflow::IPv4 vip, AttackType type, Direction dir,
                        util::Minute start, util::Minute duration = 5) {
  AttackIncident inc;
  inc.vip = vip;
  inc.type = type;
  inc.direction = dir;
  inc.start = start;
  inc.end = start + duration;
  inc.active_minutes = static_cast<std::uint32_t>(duration);
  inc.total_sampled_packets = 100;
  inc.peak_sampled_ppm = 50;
  return inc;
}

TEST(MultiVector, DetectsSimultaneousTypes) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kSynFlood, Direction::kInbound, 100),
      incident(kVipA, AttackType::kUdpFlood, Direction::kInbound, 102),
      incident(kVipA, AttackType::kIcmpFlood, Direction::kInbound, 104),
  };
  const auto events = find_multi_vector(incidents);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type_count(), 3u);
  EXPECT_TRUE(events[0].has(AttackType::kSynFlood));
  EXPECT_TRUE(events[0].has(AttackType::kIcmpFlood));
  EXPECT_EQ(events[0].incident_indices.size(), 3u);
}

TEST(MultiVector, WindowBoundaryExcludes) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kSynFlood, Direction::kInbound, 100),
      incident(kVipA, AttackType::kUdpFlood, Direction::kInbound, 105),
  };
  // Start difference of exactly 5 is outside "< 5 minutes".
  EXPECT_TRUE(find_multi_vector(incidents).empty());
}

TEST(MultiVector, SameTypeDoesNotCount) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kSynFlood, Direction::kInbound, 100),
      incident(kVipA, AttackType::kSynFlood, Direction::kInbound, 102),
  };
  EXPECT_TRUE(find_multi_vector(incidents).empty());
}

TEST(MultiVector, DirectionsSeparate) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kSynFlood, Direction::kInbound, 100),
      incident(kVipA, AttackType::kUdpFlood, Direction::kOutbound, 101),
  };
  EXPECT_TRUE(find_multi_vector(incidents).empty());
}

TEST(MultiVip, DetectsCampaign) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kBruteForce, Direction::kInbound, 100),
      incident(kVipB, AttackType::kBruteForce, Direction::kInbound, 101),
      incident(kVipC, AttackType::kBruteForce, Direction::kInbound, 103),
  };
  const auto events = find_multi_vip(incidents);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].vip_count, 3u);
  EXPECT_EQ(events[0].type, AttackType::kBruteForce);
}

TEST(MultiVip, SingleVipRepeatsDoNotCount) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kBruteForce, Direction::kInbound, 100),
      incident(kVipA, AttackType::kBruteForce, Direction::kInbound, 102),
  };
  EXPECT_TRUE(find_multi_vip(incidents).empty());
}

TEST(MultiVip, TypesSeparate) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kSynFlood, Direction::kInbound, 100),
      incident(kVipB, AttackType::kUdpFlood, Direction::kInbound, 101),
  };
  EXPECT_TRUE(find_multi_vip(incidents).empty());
}

TEST(MultiVip, SeparateWaves) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kBruteForce, Direction::kInbound, 100),
      incident(kVipB, AttackType::kBruteForce, Direction::kInbound, 101),
      incident(kVipA, AttackType::kBruteForce, Direction::kInbound, 300),
      incident(kVipC, AttackType::kBruteForce, Direction::kInbound, 302),
  };
  const auto events = find_multi_vip(incidents);
  EXPECT_EQ(events.size(), 2u);
}

TEST(CompromiseChains, DetectsInThenOut) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kBruteForce, Direction::kInbound, 100, 1000),
      incident(kVipA, AttackType::kUdpFlood, Direction::kOutbound, 5000, 100),
  };
  const auto chains = find_compromise_chains(incidents);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].vip, kVipA);
  EXPECT_EQ(chains[0].gap_minutes, 4900);
  EXPECT_EQ(chains[0].inbound_incident, 0u);
  EXPECT_EQ(chains[0].outbound_incident, 1u);
}

TEST(CompromiseChains, OutboundBeforeInboundIgnored) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kUdpFlood, Direction::kOutbound, 100),
      incident(kVipA, AttackType::kBruteForce, Direction::kInbound, 500),
  };
  EXPECT_TRUE(find_compromise_chains(incidents).empty());
}

TEST(CompromiseChains, GapLimitRespected) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kBruteForce, Direction::kInbound, 0),
      incident(kVipA, AttackType::kSynFlood, Direction::kOutbound, 10'000),
  };
  EXPECT_TRUE(find_compromise_chains(incidents, 5'000).empty());
  EXPECT_EQ(find_compromise_chains(incidents, 20'000).size(), 1u);
}

TEST(CompromiseChains, PortScanIsNotAnEntryVector) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kPortScan, Direction::kInbound, 100),
      incident(kVipA, AttackType::kUdpFlood, Direction::kOutbound, 500),
  };
  EXPECT_TRUE(find_compromise_chains(incidents).empty());
}

TEST(CompromiseChains, PicksEarliestInboundAndFirstOutboundAfter) {
  std::vector<AttackIncident> incidents{
      incident(kVipA, AttackType::kBruteForce, Direction::kInbound, 200),
      incident(kVipA, AttackType::kBruteForce, Direction::kInbound, 100),
      incident(kVipA, AttackType::kSpam, Direction::kOutbound, 50),  // before
      incident(kVipA, AttackType::kUdpFlood, Direction::kOutbound, 400),
      incident(kVipA, AttackType::kSynFlood, Direction::kOutbound, 900),
  };
  const auto chains = find_compromise_chains(incidents);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].inbound_incident, 1u);   // start 100
  EXPECT_EQ(chains[0].outbound_incident, 3u);  // start 400
}

}  // namespace
}  // namespace dm::detect
