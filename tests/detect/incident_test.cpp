#include "detect/incident.h"

#include <gtest/gtest.h>

#include <set>

namespace dm::detect {
namespace {

using netflow::Direction;
using sim::AttackType;

const netflow::IPv4 kVip = netflow::IPv4::from_octets(100, 64, 0, 1);
const netflow::IPv4 kVip2 = netflow::IPv4::from_octets(100, 64, 0, 2);

MinuteDetection det(util::Minute minute, AttackType type = AttackType::kSynFlood,
                    netflow::IPv4 vip = kVip,
                    Direction dir = Direction::kInbound,
                    std::uint64_t packets = 100, std::uint32_t remotes = 10) {
  return MinuteDetection{vip, dir, type, minute, packets, remotes};
}

TEST(IncidentBuilder, SingleMinuteIncident) {
  const auto incidents = build_incidents({det(5)}, TimeoutTable::paper());
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].start, 5);
  EXPECT_EQ(incidents[0].end, 6);
  EXPECT_EQ(incidents[0].active_minutes, 1u);
  EXPECT_EQ(incidents[0].duration(), 1);
}

TEST(IncidentBuilder, ContiguousMinutesMerge) {
  const auto incidents = build_incidents({det(5), det(6), det(7)},
                                         TimeoutTable::paper());
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].duration(), 3);
  EXPECT_EQ(incidents[0].total_sampled_packets, 300u);
}

TEST(IncidentBuilder, GapBeyondTimeoutSplits) {
  // SYN flood timeout is 1 minute: a 2-minute gap splits.
  const auto incidents = build_incidents({det(5), det(8)}, TimeoutTable::paper());
  EXPECT_EQ(incidents.size(), 2u);
}

TEST(IncidentBuilder, GapWithinTimeoutMerges) {
  // Gap of exactly 1 silent minute (5 -> 7) merges for SYN (T=1).
  const auto incidents = build_incidents({det(5), det(7)}, TimeoutTable::paper());
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].duration(), 3);
  EXPECT_EQ(incidents[0].active_minutes, 2u);
}

TEST(IncidentBuilder, PerTypeTimeoutsDiffer) {
  // The same 40-minute gap merges for ICMP (T=120) but splits SYN (T=1).
  const auto icmp = build_incidents(
      {det(0, AttackType::kIcmpFlood), det(41, AttackType::kIcmpFlood)},
      TimeoutTable::paper());
  EXPECT_EQ(icmp.size(), 1u);
  const auto syn = build_incidents({det(0), det(41)}, TimeoutTable::paper());
  EXPECT_EQ(syn.size(), 2u);
}

TEST(IncidentBuilder, SeparatesVipsTypesDirections) {
  const auto incidents = build_incidents(
      {det(5), det(5, AttackType::kUdpFlood), det(5, AttackType::kSynFlood, kVip2),
       det(5, AttackType::kSynFlood, kVip, Direction::kOutbound)},
      TimeoutTable::paper());
  EXPECT_EQ(incidents.size(), 4u);
}

TEST(IncidentBuilder, UnsortedInputHandled) {
  const auto incidents =
      build_incidents({det(7), det(5), det(6)}, TimeoutTable::paper());
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].start, 5);
  EXPECT_EQ(incidents[0].end, 8);
}

TEST(IncidentBuilder, PeakAndRampUp) {
  std::vector<MinuteDetection> minutes{
      det(10, AttackType::kUdpFlood, kVip, Direction::kInbound, 50, 5),
      det(11, AttackType::kUdpFlood, kVip, Direction::kInbound, 120, 9),
      det(12, AttackType::kUdpFlood, kVip, Direction::kInbound, 400, 30),
      det(13, AttackType::kUdpFlood, kVip, Direction::kInbound, 380, 28),
  };
  const auto incidents = build_incidents(minutes, TimeoutTable::paper());
  ASSERT_EQ(incidents.size(), 1u);
  const auto& inc = incidents[0];
  EXPECT_EQ(inc.peak_sampled_ppm, 400u);
  EXPECT_EQ(inc.peak_unique_remotes, 30u);
  EXPECT_EQ(inc.total_sampled_packets, 950u);
  EXPECT_EQ(inc.ramp_up_minutes, 2);  // first minute at >= 90% of peak
  // 400 sampled ppm at 1:4096 = ~27.3 Kpps estimated.
  EXPECT_NEAR(inc.estimated_peak_pps(4096), 400.0 * 4096 / 60.0, 1e-6);
}

TEST(IncidentBuilder, EmptyInput) {
  EXPECT_TRUE(build_incidents({}, TimeoutTable::paper()).empty());
}

TEST(InactiveGaps, ComputesGapsPerSeries) {
  std::vector<MinuteDetection> minutes{
      det(1), det(2), det(10),                       // gap of 7 silent minutes
      det(1, AttackType::kSynFlood, kVip2), det(30, AttackType::kSynFlood, kVip2),
      det(5, AttackType::kUdpFlood),                 // other type: excluded
  };
  const auto gaps =
      inactive_gaps(minutes, AttackType::kSynFlood, Direction::kInbound);
  ASSERT_EQ(gaps.size(), 2u);
  // Sorted by (vip, minute): kVip gaps {7}, kVip2 gaps {28}.
  EXPECT_EQ(gaps[0], 7.0);
  EXPECT_EQ(gaps[1], 28.0);
}

TEST(InactiveGaps, NoGapsForContiguous) {
  const std::vector<MinuteDetection> minutes{det(1), det(2), det(3)};
  const auto gaps =
      inactive_gaps(minutes, AttackType::kSynFlood, Direction::kInbound);
  EXPECT_TRUE(gaps.empty());
}

TEST(TimeoutTable, PaperValues) {
  const auto table = TimeoutTable::paper();
  EXPECT_EQ(table.of(AttackType::kSynFlood), 1);
  EXPECT_EQ(table.of(AttackType::kIcmpFlood), 120);
  EXPECT_EQ(table.of(AttackType::kSqlInjection), 30);
}

// Property: the number of incidents never exceeds the number of detections,
// and total packets are conserved.
class IncidentConservation : public ::testing::TestWithParam<int> {};

TEST_P(IncidentConservation, PacketsAndCountsConserved) {
  std::vector<MinuteDetection> minutes;
  std::set<std::pair<int, util::Minute>> seen;  // pipeline never duplicates
  unsigned state = static_cast<unsigned>(GetParam());
  std::uint64_t total_packets = 0;
  for (int i = 0; i < 300; ++i) {
    state = state * 1664525u + 1013904223u;
    const auto type = sim::kAllAttackTypes[state % sim::kAttackTypeCount];
    const auto minute = static_cast<util::Minute>(state / 7 % 2000);
    if (!seen.insert({static_cast<int>(type), minute}).second) continue;
    const std::uint64_t pkts = 1 + state % 100;
    total_packets += pkts;
    minutes.push_back(det(minute, type, kVip, Direction::kInbound, pkts, 1));
  }
  const auto incidents = build_incidents(minutes, TimeoutTable::paper());
  EXPECT_LE(incidents.size(), minutes.size());
  std::uint64_t incident_packets = 0;
  std::uint64_t active = 0;
  for (const auto& inc : incidents) {
    incident_packets += inc.total_sampled_packets;
    active += inc.active_minutes;
    EXPECT_LE(static_cast<util::Minute>(inc.active_minutes), inc.duration());
  }
  EXPECT_EQ(incident_packets, total_packets);
  EXPECT_EQ(active, minutes.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncidentConservation,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dm::detect
