#include "detect/pipeline.h"

#include <gtest/gtest.h>

namespace dm::detect {
namespace {

using netflow::Direction;
using netflow::FlowRecord;
using netflow::IPv4;
using netflow::Protocol;
using netflow::TcpFlags;

const IPv4 kVip = IPv4::from_octets(100, 64, 0, 7);
const IPv4 kRemote = IPv4::from_octets(4, 1, 2, 3);

netflow::PrefixSet cloud_space() {
  netflow::PrefixSet set;
  set.add(netflow::Prefix(IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

FlowRecord syn_packet(util::Minute m, std::uint32_t source_offset,
                      std::uint32_t packets = 1) {
  FlowRecord r;
  r.minute = m;
  r.src_ip = IPv4(kRemote.value() + source_offset);
  r.dst_ip = kVip;
  r.src_port = static_cast<std::uint16_t>(10'000 + source_offset % 50'000);
  r.dst_port = 80;
  r.protocol = Protocol::kTcp;
  r.tcp_flags = TcpFlags::kSyn;
  r.packets = packets;
  r.bytes = packets * 40;
  return r;
}

TEST(Pipeline, DetectsSynFloodEndToEnd) {
  std::vector<FlowRecord> records;
  // Three minutes of flood, 300 sampled SYNs per minute.
  for (util::Minute m = 100; m < 103; ++m) {
    for (std::uint32_t s = 0; s < 300; ++s) {
      records.push_back(syn_packet(m, s));
    }
  }
  const auto trace = netflow::aggregate_windows(std::move(records), cloud_space());
  const DetectionPipeline pipeline;
  const auto result = pipeline.run(trace);
  ASSERT_EQ(result.incidents.size(), 1u);
  const auto& inc = result.incidents[0];
  EXPECT_EQ(inc.type, sim::AttackType::kSynFlood);
  EXPECT_EQ(inc.direction, Direction::kInbound);
  EXPECT_EQ(inc.vip, kVip);
  EXPECT_EQ(inc.start, 100);
  EXPECT_EQ(inc.end, 103);
  EXPECT_EQ(inc.active_minutes, 3u);
  EXPECT_EQ(inc.peak_sampled_ppm, 300u);
}

TEST(Pipeline, QuietTrafficYieldsNothing) {
  std::vector<FlowRecord> records;
  for (util::Minute m = 0; m < 200; ++m) {
    FlowRecord r = syn_packet(m, m % 7u == 0 ? 1 : 2);
    r.tcp_flags = TcpFlags::kAck | TcpFlags::kPsh;  // ordinary traffic
    records.push_back(r);
  }
  const auto trace = netflow::aggregate_windows(std::move(records), cloud_space());
  const DetectionPipeline pipeline;
  EXPECT_TRUE(pipeline.run(trace).incidents.empty());
}

TEST(Pipeline, SeriesIsolation) {
  // A flood on one VIP must not raise the baseline of another.
  std::vector<FlowRecord> records;
  const IPv4 other_vip = IPv4::from_octets(100, 64, 0, 99);
  for (util::Minute m = 0; m < 3; ++m) {
    for (std::uint32_t s = 0; s < 300; ++s) records.push_back(syn_packet(m, s));
    FlowRecord r = syn_packet(m, 1);
    r.dst_ip = other_vip;
    r.tcp_flags = TcpFlags::kAck;
    records.push_back(r);
  }
  const auto trace = netflow::aggregate_windows(std::move(records), cloud_space());
  const DetectionPipeline pipeline;
  const auto result = pipeline.run(trace);
  for (const auto& inc : result.incidents) {
    EXPECT_EQ(inc.vip, kVip);
  }
}

TEST(Pipeline, SplitIncidentsAcrossTimeout) {
  std::vector<FlowRecord> records;
  for (std::uint32_t s = 0; s < 300; ++s) records.push_back(syn_packet(10, s));
  // SYN timeout is 1 minute; next burst 5 minutes later is a new incident.
  for (std::uint32_t s = 0; s < 300; ++s) records.push_back(syn_packet(15, s));
  const auto trace = netflow::aggregate_windows(std::move(records), cloud_space());
  const auto result = DetectionPipeline{}.run(trace);
  EXPECT_EQ(result.incidents.size(), 2u);
}

TEST(Pipeline, CustomTimeoutTableMerges) {
  std::vector<FlowRecord> records;
  for (std::uint32_t s = 0; s < 300; ++s) records.push_back(syn_packet(10, s));
  for (std::uint32_t s = 0; s < 300; ++s) records.push_back(syn_packet(15, s));
  const auto trace = netflow::aggregate_windows(std::move(records), cloud_space());
  TimeoutTable timeouts = TimeoutTable::paper();
  timeouts.timeout[sim::index_of(sim::AttackType::kSynFlood)] = 60;
  const auto result = DetectionPipeline{DetectionConfig{}, timeouts}.run(trace);
  EXPECT_EQ(result.incidents.size(), 1u);
}

TEST(Pipeline, MinutesMatchIncidents) {
  std::vector<FlowRecord> records;
  for (util::Minute m = 100; m < 110; ++m) {
    for (std::uint32_t s = 0; s < 200; ++s) records.push_back(syn_packet(m, s));
  }
  const auto trace = netflow::aggregate_windows(std::move(records), cloud_space());
  const auto result = DetectionPipeline{}.run(trace);
  std::uint64_t from_minutes = 0;
  for (const auto& d : result.minutes) from_minutes += d.sampled_packets;
  std::uint64_t from_incidents = 0;
  for (const auto& inc : result.incidents) {
    from_incidents += inc.total_sampled_packets;
  }
  EXPECT_EQ(from_minutes, from_incidents);
}

}  // namespace
}  // namespace dm::detect
