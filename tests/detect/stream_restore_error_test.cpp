// Malformed-checkpoint regression: StreamMonitor::restore must classify
// every damage shape with a structured CheckpointError kind and must leave
// the target monitor byte-identical to its pre-call state on EVERY failure
// path — including the empty and truncated streams that once slipped past
// validation straight into the payload decoder.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "detect/stream.h"
#include "netflow/flow_record.h"
#include "netflow/trace_io.h"

namespace dm::detect {
namespace {

using netflow::FlowRecord;

netflow::PrefixSet sim_cloud_space() {
  netflow::PrefixSet set;
  set.add(netflow::Prefix(netflow::IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

StreamMonitor make_monitor() {
  return StreamMonitor(sim_cloud_space(), nullptr, DetectionConfig{},
                       TimeoutTable::paper(), nullptr, nullptr, StreamConfig{});
}

std::string checkpoint_bytes(const StreamMonitor& monitor) {
  std::ostringstream out;
  monitor.checkpoint(out);
  return out.str();
}

/// Splits a valid DMCK frame into (header+size prefix, payload) so tests can
/// rebuild frames around a tampered payload with a self-consistent CRC.
std::vector<std::uint8_t> frame_payload(const std::string& frame) {
  std::size_t pos = 6;  // magic + version
  std::uint64_t size = 0;
  int shift = 0;
  for (;;) {
    const auto b = static_cast<std::uint8_t>(frame[pos++]);
    size |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return {frame.begin() + static_cast<std::ptrdiff_t>(pos),
          frame.begin() + static_cast<std::ptrdiff_t>(pos + size)};
}

/// Reframes `payload` as a DMCK checkpoint with a correct size varint and
/// CRC — the "CRC-clean but semantically wrong" construction kit.
std::string reframe(std::vector<std::uint8_t> payload) {
  std::string out;
  const char magic[6] = {'D', 'M', 'C', 'K', 1, 0};
  out.append(magic, 6);
  std::uint64_t size = payload.size();
  for (;;) {
    const auto b = static_cast<std::uint8_t>(size & 0x7f);
    size >>= 7;
    out.push_back(static_cast<char>(size != 0 ? b | 0x80 : b));
    if (size == 0) break;
  }
  out.append(payload.begin(), payload.end());
  const std::uint32_t crc = netflow::crc32({payload.data(), payload.size()});
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  return out;
}

/// Asserts restore(`bytes`) throws CheckpointError with `kind` and that the
/// monitor's observable state (checkpoint bytes + counters) is untouched.
void expect_rejected(const std::string& bytes, CheckpointError::Kind kind,
                     const char* label) {
  SCOPED_TRACE(label);
  StreamMonitor target = make_monitor();
  FlowRecord r;
  r.minute = 4;
  r.src_ip = netflow::IPv4::from_octets(8, 8, 8, 8);
  r.dst_ip = netflow::IPv4::from_octets(100, 64, 1, 2);
  r.packets = 3;
  r.bytes = 99;
  target.ingest(r);
  const std::string before = checkpoint_bytes(target);

  std::istringstream in(bytes, std::ios::binary);
  try {
    target.restore(in);
    FAIL() << "restore accepted a malformed checkpoint";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(static_cast<int>(e.kind()), static_cast<int>(kind))
        << "wrong kind: " << e.what();
  }
  EXPECT_EQ(checkpoint_bytes(target), before)
      << "failed restore mutated the monitor";
  EXPECT_EQ(target.records_ingested(), 1u);
}

class StreamRestoreError : public ::testing::Test {
 protected:
  void SetUp() override {
    StreamMonitor source = make_monitor();
    for (int i = 0; i < 50; ++i) {
      FlowRecord r;
      r.minute = i / 5;
      r.src_ip = netflow::IPv4::from_octets(9, 9, 9, static_cast<uint8_t>(i));
      r.dst_ip = netflow::IPv4::from_octets(100, 64, 0, 1);
      r.packets = 40;
      r.bytes = 2000;
      source.ingest(r);
    }
    valid_ = checkpoint_bytes(source);
    ASSERT_GT(valid_.size(), 16u);
  }

  std::string valid_;
};

TEST_F(StreamRestoreError, EmptyStream) {
  expect_rejected("", CheckpointError::Kind::kTruncated, "empty");
}

TEST_F(StreamRestoreError, TruncatedEverywhere) {
  // Cut inside the header, the size varint, the payload, and the CRC.
  for (const std::size_t cut : {std::size_t{3}, std::size_t{6},
                                valid_.size() / 2, valid_.size() - 2}) {
    expect_rejected(valid_.substr(0, cut), CheckpointError::Kind::kTruncated,
                    ("cut at " + std::to_string(cut)).c_str());
  }
}

TEST_F(StreamRestoreError, BadMagic) {
  std::string mangled = valid_;
  mangled[1] = 'X';
  expect_rejected(mangled, CheckpointError::Kind::kBadMagic, "magic");
}

TEST_F(StreamRestoreError, BadVersion) {
  std::string mangled = valid_;
  mangled[4] = 9;
  expect_rejected(mangled, CheckpointError::Kind::kBadVersion, "version");
}

TEST_F(StreamRestoreError, OversizedPayloadClaim) {
  // Header + a size varint claiming 2^40 bytes: must be rejected by the cap
  // before any allocation, not by running out of stream.
  std::string huge(valid_.substr(0, 6));
  for (int i = 0; i < 5; ++i) huge.push_back(static_cast<char>(0x80));
  huge.push_back(static_cast<char>(0x10));
  expect_rejected(huge, CheckpointError::Kind::kOversized, "oversized");
}

TEST_F(StreamRestoreError, PayloadBitFlip) {
  std::string mangled = valid_;
  mangled[valid_.size() / 2] ^= 0x04;
  expect_rejected(mangled, CheckpointError::Kind::kCrcMismatch, "bit flip");
}

TEST_F(StreamRestoreError, CrcValidButUndecodable) {
  // Drop the payload's last byte and reframe with a consistent size + CRC:
  // the frame is pristine, the content is not.
  auto payload = frame_payload(valid_);
  ASSERT_FALSE(payload.empty());
  payload.pop_back();
  expect_rejected(reframe(std::move(payload)),
                  CheckpointError::Kind::kMalformedPayload, "undecodable");
}

TEST_F(StreamRestoreError, TrailingPayloadBytes) {
  auto payload = frame_payload(valid_);
  payload.push_back(0);
  expect_rejected(reframe(std::move(payload)),
                  CheckpointError::Kind::kTrailingBytes, "trailing");
}

TEST_F(StreamRestoreError, PristineBytesStillRestoreAfterFailures) {
  StreamMonitor target = make_monitor();
  for (const std::size_t cut : {std::size_t{0}, std::size_t{5}}) {
    std::istringstream in(valid_.substr(0, cut), std::ios::binary);
    EXPECT_THROW(target.restore(in), CheckpointError);
  }
  std::istringstream in(valid_, std::ios::binary);
  target.restore(in);
  EXPECT_EQ(checkpoint_bytes(target), valid_);
  EXPECT_EQ(target.records_ingested(), 50u);
}

}  // namespace
}  // namespace dm::detect
