#include "detect/timeout_selector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace dm::detect {
namespace {

using netflow::Direction;
using sim::AttackType;

const netflow::IPv4 kVip = netflow::IPv4::from_octets(100, 64, 0, 1);

/// Builds detections whose inactive gaps are drawn from a given sampler.
template <typename GapFn>
std::vector<MinuteDetection> detections_with_gaps(AttackType type, Direction dir,
                                                  int count, GapFn&& gap) {
  std::vector<MinuteDetection> out;
  util::Minute minute = 0;
  std::uint32_t vip_offset = 0;
  for (int i = 0; i < count; ++i) {
    // A fresh VIP every 20 samples keeps series small but plentiful.
    if (i % 20 == 0) {
      ++vip_offset;
      minute = 0;
    }
    out.push_back(MinuteDetection{netflow::IPv4(kVip.value() + vip_offset), dir,
                                  type, minute, 100, 5});
    minute += 1 + gap(i);
  }
  return out;
}

TEST(FitGapTail, EmptyGaps) {
  const auto fit = fit_gap_tail({}, 10);
  EXPECT_EQ(fit.n, 0u);
}

TEST(FitGapTail, AllGapsBelowCandidateIsPerfect) {
  const std::vector<double> gaps{1.0, 2.0, 3.0};
  const auto fit = fit_gap_tail(gaps, 100);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(FitGapTail, LinearTailFitsWell) {
  // Gaps log-uniform in [10, 1000]: the CDF is linear against log-minutes,
  // which is the space the fit runs in (Fig 1 uses a log x axis).
  std::vector<double> gaps;
  for (int i = 0; i < 200; ++i) {
    gaps.push_back(10.0 * std::pow(100.0, i / 199.0));
  }
  const auto fit = fit_gap_tail(gaps, 10);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(SelectTimeouts, ScarceDataFallsBack) {
  TimeoutSelectorConfig config;
  const auto choices = select_timeouts({}, config);
  ASSERT_EQ(choices.size(), sim::kAttackTypeCount);
  for (const auto& c : choices) {
    EXPECT_EQ(c.timeout, config.fallback);
    EXPECT_EQ(c.inbound_gaps, 0u);
  }
}

TEST(SelectTimeouts, ShortGapsPickSmallTimeout) {
  // Gaps overwhelmingly tiny (flood-like) with a thin heavy tail: beyond
  // T=1 the CDF tail is almost flat-linear, so the smallest candidate wins.
  util::Rng rng(1);
  auto dets = detections_with_gaps(
      AttackType::kSynFlood, Direction::kInbound, 400, [&](int) {
        return static_cast<util::Minute>(rng.chance(0.9) ? 0 : rng.below(300));
      });
  auto out_dets = detections_with_gaps(
      AttackType::kSynFlood, Direction::kOutbound, 400, [&](int) {
        return static_cast<util::Minute>(rng.chance(0.9) ? 0 : rng.below(300));
      });
  dets.insert(dets.end(), out_dets.begin(), out_dets.end());
  const auto choices = select_timeouts(dets);
  const auto& syn = choices[sim::index_of(AttackType::kSynFlood)];
  EXPECT_GT(syn.inbound_gaps, 10u);
  EXPECT_LE(syn.timeout, 10);
}

TEST(SelectTimeouts, ClusteredMidGapsNeedLargerTimeout) {
  // Gap mass clustered around ~40-80 minutes makes the CDF strongly curved
  // at small T; a larger candidate is needed before the tail looks linear.
  util::Rng rng(2);
  auto dets = detections_with_gaps(
      AttackType::kIcmpFlood, Direction::kInbound, 600, [&](int) {
        const double g = rng.chance(0.8) ? rng.uniform(40.0, 80.0)
                                         : rng.uniform(1.0, 500.0);
        return static_cast<util::Minute>(g);
      });
  auto out_dets = detections_with_gaps(
      AttackType::kIcmpFlood, Direction::kOutbound, 600, [&](int) {
        const double g = rng.chance(0.8) ? rng.uniform(40.0, 80.0)
                                         : rng.uniform(1.0, 500.0);
        return static_cast<util::Minute>(g);
      });
  dets.insert(dets.end(), out_dets.begin(), out_dets.end());
  const auto choices = select_timeouts(dets);
  const auto& icmp = choices[sim::index_of(AttackType::kIcmpFlood)];
  EXPECT_GE(icmp.timeout, 30);
}

TEST(SelectTimeouts, RespectsCandidateOrder) {
  // Whatever the data, the chosen timeout is one of the candidates (or the
  // fallback).
  util::Rng rng(3);
  auto dets = detections_with_gaps(
      AttackType::kSpam, Direction::kOutbound, 300,
      [&](int) { return static_cast<util::Minute>(rng.below(1000)); });
  TimeoutSelectorConfig config;
  const auto choices = select_timeouts(dets, config);
  for (const auto& c : choices) {
    const bool is_candidate =
        std::find(config.candidates.begin(), config.candidates.end(),
                  c.timeout) != config.candidates.end();
    EXPECT_TRUE(is_candidate || c.timeout == config.fallback);
  }
}

TEST(ToTable, OverridesOnlyProvidedTypes) {
  std::vector<TimeoutChoice> choices;
  TimeoutChoice c;
  c.type = AttackType::kSynFlood;
  c.timeout = 42;
  choices.push_back(c);
  const auto table = to_table(choices);
  EXPECT_EQ(table.of(AttackType::kSynFlood), 42);
  // Untouched types keep Table 1 values.
  EXPECT_EQ(table.of(AttackType::kIcmpFlood), 120);
}

}  // namespace
}  // namespace dm::detect
