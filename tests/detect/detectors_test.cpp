#include "detect/detectors.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dm::detect {
namespace {

using netflow::Direction;
using netflow::VipMinuteStats;
using sim::AttackType;

VipMinuteStats window(util::Minute minute) {
  VipMinuteStats w;
  w.vip = netflow::IPv4::from_octets(100, 64, 0, 1);
  w.minute = minute;
  w.direction = Direction::kInbound;
  return w;
}

TEST(ChangePointDetector, ColdStartSpikesAlarm) {
  // A dormant VIP whose first traffic is a flood must alarm immediately —
  // the Fig 5 case-study path.
  ChangePointDetector d(10, 100.0);
  EXPECT_TRUE(d.observe(500, 5'000.0));
}

TEST(ChangePointDetector, SteadyTrafficNeverAlarms) {
  ChangePointDetector d(10, 100.0);
  for (util::Minute m = 0; m < 500; ++m) {
    EXPECT_FALSE(d.observe(m, 50.0)) << "minute " << m;
  }
}

TEST(ChangePointDetector, SpikeOverBaselineAlarms) {
  ChangePointDetector d(10, 100.0);
  for (util::Minute m = 0; m < 50; ++m) (void)d.observe(m, 40.0);
  EXPECT_TRUE(d.observe(50, 200.0));
}

TEST(ChangePointDetector, SubThresholdSpikeIgnored) {
  ChangePointDetector d(10, 100.0);
  for (util::Minute m = 0; m < 50; ++m) (void)d.observe(m, 40.0);
  EXPECT_FALSE(d.observe(50, 120.0));  // change is only 80
}

TEST(ChangePointDetector, SustainedAttackStaysAlarmed) {
  // The baseline freezes during alarms, so a long flood is flagged for its
  // whole duration.
  ChangePointDetector d(10, 100.0);
  for (util::Minute m = 0; m < 30; ++m) (void)d.observe(m, 10.0);
  for (util::Minute m = 30; m < 120; ++m) {
    EXPECT_TRUE(d.observe(m, 400.0)) << "minute " << m;
  }
  // After the attack, normal traffic is quiet again.
  EXPECT_FALSE(d.observe(120, 10.0));
}

TEST(ChangePointDetector, GapsDecayBaseline) {
  ChangePointDetector d(10, 100.0);
  for (util::Minute m = 0; m < 20; ++m) (void)d.observe(m, 150.0);
  // After an hour of silence the baseline has decayed to ~0; moderate
  // traffic looks like a fresh spike.
  EXPECT_TRUE(d.observe(80, 130.0));
}

TEST(ChangePointDetector, DiurnalDriftAbsorbed) {
  // Slow sinusoidal drift (the benign diurnal curve) must not alarm once the
  // baseline is warm. (The cold-start spike at trace start legitimately
  // alarms — see ColdStartSpikesAlarm.)
  ChangePointDetector d(10, 100.0);
  for (util::Minute m = 0; m < 60; ++m) (void)d.observe(m, 200.0);
  for (util::Minute m = 60; m < 2940; ++m) {
    const double value =
        200.0 + 150.0 * std::sin(2 * 3.14159 * static_cast<double>(m - 60) / 1440.0);
    EXPECT_FALSE(d.observe(m, value)) << "minute " << m;
  }
}

TEST(SeriesDetector, SynFloodDetected) {
  SeriesDetector d{DetectionConfig{}};
  for (util::Minute m = 0; m < 15; ++m) {
    auto w = window(m);
    w.syn_packets = 5;
    w.packets = 10;
    (void)d.observe(w);
  }
  auto w = window(15);
  w.syn_packets = 400;
  w.packets = 410;
  w.unique_remote_ips = 350;
  const auto v = d.observe(w);
  EXPECT_TRUE(v[sim::index_of(AttackType::kSynFlood)].attack);
  EXPECT_EQ(v[sim::index_of(AttackType::kSynFlood)].sampled_packets, 400u);
  EXPECT_FALSE(v[sim::index_of(AttackType::kUdpFlood)].attack);
}

TEST(SeriesDetector, DnsCarvedOutOfUdp) {
  SeriesDetector d{DetectionConfig{}};
  auto w = window(10);
  w.udp_packets = 500;
  w.dns_response_packets = 450;  // mostly reflection
  const auto v = d.observe(w);
  EXPECT_TRUE(v[sim::index_of(AttackType::kDnsReflection)].attack);
  // Residual UDP (50) is under the threshold.
  EXPECT_FALSE(v[sim::index_of(AttackType::kUdpFlood)].attack);
}

TEST(SeriesDetector, BruteForceByFanIn) {
  SeriesDetector d{DetectionConfig{}};
  auto w = window(10);
  w.unique_admin_remotes = 24;  // the paper's median sampled fan-in
  w.remote_admin_flows = 25;
  w.admin_packets = 60;
  const auto v = d.observe(w);
  EXPECT_TRUE(v[sim::index_of(AttackType::kBruteForce)].attack);
  EXPECT_EQ(v[sim::index_of(AttackType::kBruteForce)].unique_remotes, 24u);
}

TEST(SeriesDetector, BruteForceByConnectionCount) {
  // Two hosts, many connections — the §4.3 subnet-scan signature.
  SeriesDetector d{DetectionConfig{}};
  auto w = window(10);
  w.unique_admin_remotes = 2;
  w.remote_admin_flows = 80;
  w.admin_packets = 200;
  const auto v = d.observe(w);
  EXPECT_TRUE(v[sim::index_of(AttackType::kBruteForce)].attack);
}

TEST(SeriesDetector, QuietAdminTrafficIgnored) {
  SeriesDetector d{DetectionConfig{}};
  for (util::Minute m = 0; m < 100; ++m) {
    auto w = window(m);
    w.unique_admin_remotes = 3;
    w.remote_admin_flows = 4;
    const auto v = d.observe(w);
    EXPECT_FALSE(v[sim::index_of(AttackType::kBruteForce)].attack);
  }
}

TEST(SeriesDetector, SpamBySmtpSpread) {
  SeriesDetector d{DetectionConfig{}};
  auto w = window(10);
  w.unique_smtp_remotes = 35;
  w.smtp_flows = 40;
  w.smtp_packets = 80;
  const auto v = d.observe(w);
  EXPECT_TRUE(v[sim::index_of(AttackType::kSpam)].attack);
}

TEST(SeriesDetector, SqlByConnectionCount) {
  SeriesDetector d{DetectionConfig{}};
  auto w = window(10);
  w.sql_flows = 45;
  w.sql_packets = 90;
  const auto v = d.observe(w);
  EXPECT_TRUE(v[sim::index_of(AttackType::kSqlInjection)].attack);

  SeriesDetector d2{DetectionConfig{}};
  auto w2 = window(10);
  w2.sql_flows = 10;  // below the 30-connection threshold
  const auto v2 = d2.observe(w2);
  EXPECT_FALSE(v2[sim::index_of(AttackType::kSqlInjection)].attack);
}

TEST(SeriesDetector, SignatureDetectsSinglePacket) {
  // "even a single logged packet may represent a significant number" (§2.2).
  SeriesDetector d{DetectionConfig{}};
  auto w = window(10);
  w.null_scan_packets = 1;
  const auto v = d.observe(w);
  EXPECT_TRUE(v[sim::index_of(AttackType::kPortScan)].attack);
}

TEST(SeriesDetector, XmasAndRstSignatures) {
  SeriesDetector d{DetectionConfig{}};
  auto w = window(10);
  w.xmas_scan_packets = 2;
  EXPECT_TRUE(d.observe(w)[sim::index_of(AttackType::kPortScan)].attack);

  SeriesDetector d2{DetectionConfig{}};
  auto w2 = window(10);
  w2.bare_rst_packets = 2;  // below the RST threshold of 3
  EXPECT_FALSE(d2.observe(w2)[sim::index_of(AttackType::kPortScan)].attack);
  auto w3 = window(11);
  w3.bare_rst_packets = 5;
  EXPECT_TRUE(d2.observe(w3)[sim::index_of(AttackType::kPortScan)].attack);
}

TEST(SeriesDetector, TdsByBlacklistContact) {
  SeriesDetector d{DetectionConfig{}};
  auto w = window(10);
  w.blacklist_flows = 1;
  w.blacklist_packets = 3;
  w.unique_blacklist_remotes = 1;
  const auto v = d.observe(w);
  EXPECT_TRUE(v[sim::index_of(AttackType::kTds)].attack);
  EXPECT_EQ(v[sim::index_of(AttackType::kTds)].sampled_packets, 3u);
}

TEST(SeriesDetector, MultiVectorWindowFlagsAllTypes) {
  SeriesDetector d{DetectionConfig{}};
  auto w = window(10);
  w.syn_packets = 300;
  w.icmp_packets = 250;
  w.null_scan_packets = 2;
  const auto v = d.observe(w);
  EXPECT_TRUE(v[sim::index_of(AttackType::kSynFlood)].attack);
  EXPECT_TRUE(v[sim::index_of(AttackType::kIcmpFlood)].attack);
  EXPECT_TRUE(v[sim::index_of(AttackType::kPortScan)].attack);
}

// Parameterized: the volume threshold boundary is exact for every flood class.
class ThresholdBoundary : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdBoundary, AlarmExactlyAboveThreshold) {
  DetectionConfig config;
  config.volume_change_threshold = GetParam();
  ChangePointDetector d(config.ewma_window, config.volume_change_threshold);
  // Baseline 0 (first window): alarm iff value > threshold.
  EXPECT_FALSE(
      ChangePointDetector(10, GetParam()).observe(10, GetParam()));
  EXPECT_TRUE(
      ChangePointDetector(10, GetParam()).observe(10, GetParam() + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdBoundary,
                         ::testing::Values(10.0, 100.0, 500.0));

}  // namespace
}  // namespace dm::detect
