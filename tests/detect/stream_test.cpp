#include "detect/stream.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "detect/pipeline.h"
#include "sim/trace_generator.h"

namespace dm::detect {
namespace {

using netflow::Direction;
using netflow::FlowRecord;
using netflow::IPv4;
using netflow::Protocol;
using netflow::TcpFlags;

const IPv4 kVip = IPv4::from_octets(100, 64, 0, 7);

netflow::PrefixSet cloud_space() {
  netflow::PrefixSet set;
  set.add(netflow::Prefix(IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

FlowRecord syn(util::Minute m, std::uint32_t src_offset) {
  FlowRecord r;
  r.minute = m;
  r.src_ip = IPv4(0x04000000u + src_offset);
  r.dst_ip = kVip;
  r.src_port = static_cast<std::uint16_t>(20'000 + src_offset % 40'000);
  r.dst_port = 80;
  r.protocol = Protocol::kTcp;
  r.tcp_flags = TcpFlags::kSyn;
  r.packets = 1;
  r.bytes = 40;
  return r;
}

TEST(StreamMonitor, DetectsFloodOnline) {
  std::vector<AttackIncident> incidents;
  std::vector<MinuteDetection> alerts;
  StreamMonitor monitor(
      cloud_space(), nullptr, DetectionConfig{}, TimeoutTable::paper(),
      [&](const MinuteDetection& d) { alerts.push_back(d); },
      [&](const AttackIncident& inc) { incidents.push_back(inc); });

  for (util::Minute m = 100; m < 105; ++m) {
    for (std::uint32_t s = 0; s < 300; ++s) monitor.ingest(syn(m, s));
  }
  // The flood's last window is still open: no incident yet.
  EXPECT_TRUE(incidents.empty());
  monitor.finish();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].type, sim::AttackType::kSynFlood);
  EXPECT_EQ(incidents[0].start, 100);
  EXPECT_EQ(incidents[0].end, 105);
  EXPECT_EQ(incidents[0].active_minutes, 5u);
  EXPECT_EQ(alerts.size(), 5u);
  EXPECT_EQ(monitor.alerts(), 5u);
  EXPECT_EQ(monitor.incidents(), 1u);
}

TEST(StreamMonitor, IncidentEmittedWhenTimeoutExpires) {
  std::vector<AttackIncident> incidents;
  StreamMonitor monitor(cloud_space(), nullptr, DetectionConfig{},
                        TimeoutTable::paper(), nullptr,
                        [&](const AttackIncident& inc) {
                          incidents.push_back(inc);
                        });
  for (std::uint32_t s = 0; s < 300; ++s) monitor.ingest(syn(100, s));
  // Advance wall clock past the SYN timeout (1 min): incident closes
  // without any new traffic.
  monitor.advance_to(105);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].end, 101);
}

TEST(StreamMonitor, SplitsIncidentsAcrossGaps) {
  std::vector<AttackIncident> incidents;
  StreamMonitor monitor(cloud_space(), nullptr, DetectionConfig{},
                        TimeoutTable::paper(), nullptr,
                        [&](const AttackIncident& inc) {
                          incidents.push_back(inc);
                        });
  for (std::uint32_t s = 0; s < 300; ++s) monitor.ingest(syn(100, s));
  for (std::uint32_t s = 0; s < 300; ++s) monitor.ingest(syn(110, s));
  monitor.finish();
  EXPECT_EQ(incidents.size(), 2u);
}

TEST(StreamMonitor, LateRecordsDropped) {
  StreamMonitor monitor(cloud_space());
  monitor.ingest(syn(100, 1));
  monitor.ingest(syn(105, 2));  // commits minutes < 105
  monitor.ingest(syn(100, 3));  // late
  EXPECT_EQ(monitor.records_dropped(), 1u);
}

TEST(StreamMonitor, UnclassifiableRecordsDropped) {
  StreamMonitor monitor(cloud_space());
  FlowRecord r = syn(100, 1);
  r.dst_ip = IPv4::from_octets(4, 4, 4, 4);  // remote-to-remote
  monitor.ingest(r);
  EXPECT_EQ(monitor.records_dropped(), 1u);
}

TEST(StreamMonitor, MatchesBatchPipelineOnSimulatedTrace) {
  // The gold property: on an in-order feed, the streaming monitor finds the
  // same incidents as the offline pipeline.
  auto config = sim::ScenarioConfig::smoke();
  config.vips.vip_count = 100;
  config.days = 1;
  config.seed = 777;
  const sim::Scenario scenario(config);
  auto generated = sim::generate_trace(scenario);

  // Batch result.
  auto records_copy = generated.records;
  const auto windowed = netflow::aggregate_windows(
      std::move(records_copy), scenario.vips().cloud_space(),
      &scenario.tds().as_prefix_set());
  const auto batch = DetectionPipeline{}.run(windowed);

  // Streaming result over the time-ordered feed.
  std::stable_sort(generated.records.begin(), generated.records.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.minute < b.minute;
                   });
  std::vector<AttackIncident> streamed;
  StreamMonitor monitor(scenario.vips().cloud_space(),
                        &scenario.tds().as_prefix_set(), DetectionConfig{},
                        TimeoutTable::paper(), nullptr,
                        [&](const AttackIncident& inc) {
                          streamed.push_back(inc);
                        });
  for (const auto& r : generated.records) monitor.ingest(r);
  monitor.finish();

  ASSERT_EQ(streamed.size(), batch.incidents.size());
  // Sort both the same way and compare the essential fields.
  const auto key = [](const AttackIncident& inc) {
    return std::make_tuple(inc.vip.value(), static_cast<int>(inc.direction),
                           static_cast<int>(inc.type), inc.start);
  };
  auto batch_sorted = batch.incidents;
  std::sort(batch_sorted.begin(), batch_sorted.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  std::sort(streamed.begin(), streamed.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(key(streamed[i]), key(batch_sorted[i]));
    EXPECT_EQ(streamed[i].end, batch_sorted[i].end);
    EXPECT_EQ(streamed[i].active_minutes, batch_sorted[i].active_minutes);
    EXPECT_EQ(streamed[i].total_sampled_packets,
              batch_sorted[i].total_sampled_packets);
    EXPECT_EQ(streamed[i].peak_sampled_ppm, batch_sorted[i].peak_sampled_ppm);
  }
  EXPECT_EQ(monitor.windows_closed(), windowed.windows().size());
}

TEST(StreamMonitor, SplitCountersPartitionDrops) {
  StreamMonitor monitor(cloud_space());
  monitor.ingest(syn(100, 1));
  monitor.ingest(syn(105, 2));  // commits minutes < 105
  monitor.ingest(syn(100, 3));  // late
  FlowRecord remote = syn(106, 4);
  remote.dst_ip = IPv4::from_octets(4, 4, 4, 4);  // remote-to-remote
  monitor.ingest(remote);
  FlowRecord empty = syn(106, 5);
  empty.packets = 0;  // structurally malformed
  monitor.ingest(empty);

  EXPECT_EQ(monitor.records_ingested(), 5u);
  EXPECT_EQ(monitor.records_late(), 1u);
  EXPECT_EQ(monitor.records_unclassifiable(), 1u);
  EXPECT_EQ(monitor.records_quarantined(), 1u);
  EXPECT_EQ(monitor.records_duplicate(), 0u);
  // Aggregate covers every refusal cause: late + unclassifiable +
  // quarantined (+ duplicate, zero here).
  EXPECT_EQ(monitor.records_dropped(), 3u);
}

TEST(StreamMonitor, ReorderLagAcceptsBoundedDisorder) {
  StreamConfig stream;
  stream.reorder_lag = 2;
  StreamMonitor monitor(cloud_space(), nullptr, DetectionConfig{},
                        TimeoutTable::paper(), nullptr, nullptr, stream);
  monitor.ingest(syn(105, 1));  // watermark moves to 102
  monitor.ingest(syn(104, 2));  // within the lag: accepted
  monitor.ingest(syn(103, 3));  // still within: accepted
  monitor.ingest(syn(102, 4));  // at the watermark: late
  EXPECT_EQ(monitor.records_late(), 1u);
  monitor.finish();
  EXPECT_EQ(monitor.windows_closed(), 3u);
}

TEST(StreamMonitor, ReorderedFloodMatchesInOrderResult) {
  // A flood fed in bounded disorder under a sufficient lag must produce
  // the same incident as the in-order feed.
  std::vector<FlowRecord> feed;
  for (util::Minute m = 100; m < 105; ++m) {
    for (std::uint32_t s = 0; s < 300; ++s) feed.push_back(syn(m, s));
  }
  std::vector<FlowRecord> disordered = feed;
  // Swap records across adjacent minutes throughout the feed.
  for (std::size_t i = 150; i + 300 < disordered.size(); i += 300) {
    std::swap(disordered[i], disordered[i + 299]);
  }

  const auto run = [](const std::vector<FlowRecord>& records,
                      util::Minute lag) {
    StreamConfig stream;
    stream.reorder_lag = lag;
    std::vector<AttackIncident> incidents;
    StreamMonitor monitor(
        cloud_space(), nullptr, DetectionConfig{}, TimeoutTable::paper(),
        nullptr,
        [&incidents](const AttackIncident& inc) { incidents.push_back(inc); },
        stream);
    for (const auto& r : records) monitor.ingest(r);
    monitor.finish();
    EXPECT_EQ(monitor.records_late(), 0u);
    return incidents;
  };

  const auto in_order = run(feed, 1);
  const auto reordered = run(disordered, 1);
  ASSERT_EQ(in_order.size(), 1u);
  ASSERT_EQ(reordered.size(), 1u);
  EXPECT_EQ(reordered[0].start, in_order[0].start);
  EXPECT_EQ(reordered[0].end, in_order[0].end);
  EXPECT_EQ(reordered[0].total_sampled_packets,
            in_order[0].total_sampled_packets);
}

TEST(StreamMonitor, DuplicateSuppressionIsOptIn) {
  // Off (default): the repeat contributes to the window again.
  StreamMonitor plain(cloud_space());
  plain.ingest(syn(100, 1));
  plain.ingest(syn(100, 1));
  EXPECT_EQ(plain.records_duplicate(), 0u);

  StreamConfig stream;
  stream.suppress_duplicates = true;
  StreamMonitor dedup(cloud_space(), nullptr, DetectionConfig{},
                      TimeoutTable::paper(), nullptr, nullptr, stream);
  dedup.ingest(syn(100, 1));
  dedup.ingest(syn(100, 1));  // byte-identical re-emit
  dedup.ingest(syn(100, 2));  // distinct record passes
  EXPECT_EQ(dedup.records_duplicate(), 1u);
  EXPECT_EQ(dedup.records_ingested(), 3u);
}

TEST(StreamMonitor, DeclaredOutageDoesNotCollapseBaseline) {
  // Steady 200 SYN-packets/min, a 60-minute collector outage, then the same
  // steady rate. Undeclared, the gap decays the EWMA to ~0 and the resumed
  // steady rate alarms as a flood; declared via note_outage it must not.
  const auto steady = [](StreamMonitor& monitor, util::Minute from,
                         util::Minute to) {
    for (util::Minute m = from; m < to; ++m) {
      FlowRecord r = syn(m, 1);
      r.packets = 200;
      monitor.ingest(r);
    }
  };

  std::uint64_t alerts_without = 0;
  {
    StreamMonitor monitor(cloud_space());
    steady(monitor, 0, 21);
    steady(monitor, 81, 101);
    monitor.finish();
    alerts_without = monitor.alerts();
  }
  EXPECT_GT(alerts_without, 0u) << "undeclared outage must look like a flood "
                                   "(otherwise this test checks nothing)";

  std::uint64_t alerts_with = 0;
  {
    StreamMonitor monitor(cloud_space());
    steady(monitor, 0, 21);
    monitor.note_outage(21, 81);
    steady(monitor, 81, 101);
    monitor.finish();
    alerts_with = monitor.alerts();
  }
  EXPECT_EQ(alerts_with, 0u)
      << "declared outage minutes must not decay the detector baseline";
}

TEST(StreamMonitor, OutageOnlyCoversDeclaredMinutes) {
  // A declared outage must not mask a genuine post-outage flood: the spike
  // is far above the preserved baseline and still alarms.
  StreamMonitor monitor(cloud_space());
  for (util::Minute m = 0; m < 21; ++m) {
    FlowRecord r = syn(m, 1);
    r.packets = 50;
    monitor.ingest(r);
  }
  monitor.note_outage(21, 51);
  for (std::uint32_t s = 0; s < 300; ++s) monitor.ingest(syn(51, s));
  monitor.finish();
  EXPECT_GT(monitor.alerts(), 0u);
}

}  // namespace
}  // namespace dm::detect
