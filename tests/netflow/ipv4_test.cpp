#include "netflow/ipv4.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dm::netflow {
namespace {

TEST(IPv4, ParseAndFormatRoundTrip) {
  for (const char* text : {"0.0.0.0", "1.2.3.4", "255.255.255.255",
                           "100.64.0.1", "192.168.1.200"}) {
    const auto ip = IPv4::parse(text);
    ASSERT_TRUE(ip.has_value()) << text;
    EXPECT_EQ(ip->to_string(), text);
  }
}

TEST(IPv4, ParseRejectsMalformed) {
  for (const char* text : {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d",
                           "1..2.3", "1.2.3.4 ", " 1.2.3.4", "-1.2.3.4"}) {
    EXPECT_FALSE(IPv4::parse(text).has_value()) << text;
  }
}

TEST(IPv4, FromOctets) {
  EXPECT_EQ(IPv4::from_octets(10, 0, 0, 1).value(), 0x0a000001u);
  EXPECT_EQ(IPv4::from_octets(255, 255, 255, 255).value(), 0xffffffffu);
}

TEST(IPv4, Ordering) {
  EXPECT_LT(IPv4(1), IPv4(2));
  EXPECT_EQ(IPv4(7), IPv4(7));
}

TEST(IPv4, UnitIntervalMapping) {
  EXPECT_DOUBLE_EQ(IPv4(0).as_unit_interval(), 0.0);
  EXPECT_NEAR(IPv4(0x80000000u).as_unit_interval(), 0.5, 1e-9);
  EXPECT_LT(IPv4(0xffffffffu).as_unit_interval(), 1.0);
}

TEST(Prefix, MasksBaseAddress) {
  const Prefix p(IPv4::from_octets(10, 1, 2, 3), 16);
  EXPECT_EQ(p.network(), IPv4::from_octets(10, 1, 0, 0));
  EXPECT_EQ(p.length(), 16);
  EXPECT_EQ(p.size(), 65536u);
}

TEST(Prefix, Contains) {
  const Prefix p(IPv4::from_octets(100, 64, 0, 0), 12);
  EXPECT_TRUE(p.contains(IPv4::from_octets(100, 64, 0, 1)));
  EXPECT_TRUE(p.contains(IPv4::from_octets(100, 79, 255, 255)));
  EXPECT_FALSE(p.contains(IPv4::from_octets(100, 80, 0, 0)));
  EXPECT_FALSE(p.contains(IPv4::from_octets(99, 64, 0, 0)));
}

TEST(Prefix, ParseRoundTrip) {
  const auto p = Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0/8").has_value());
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix p(IPv4(12345), 0);
  EXPECT_TRUE(p.contains(IPv4(0)));
  EXPECT_TRUE(p.contains(IPv4(0xffffffffu)));
  EXPECT_EQ(p.size(), 1ull << 32);
}

TEST(Prefix, AtIndexes) {
  const Prefix p(IPv4::from_octets(10, 0, 0, 0), 24);
  EXPECT_EQ(p.at(0), IPv4::from_octets(10, 0, 0, 0));
  EXPECT_EQ(p.at(255), IPv4::from_octets(10, 0, 0, 255));
}

TEST(PrefixSet, EmptyMatchesNothing) {
  const PrefixSet set;
  EXPECT_FALSE(set.contains(IPv4(1)));
  EXPECT_FALSE(set.match(IPv4(1)).has_value());
}

TEST(PrefixSet, LongestPrefixWins) {
  PrefixSet set;
  set.add(Prefix(IPv4::from_octets(10, 0, 0, 0), 8));
  set.add(Prefix(IPv4::from_octets(10, 1, 0, 0), 16));
  set.add(Prefix(IPv4::from_octets(10, 1, 2, 0), 24));

  EXPECT_EQ(set.match(IPv4::from_octets(10, 1, 2, 3))->length(), 24);
  EXPECT_EQ(set.match(IPv4::from_octets(10, 1, 9, 9))->length(), 16);
  EXPECT_EQ(set.match(IPv4::from_octets(10, 200, 0, 1))->length(), 8);
  EXPECT_FALSE(set.match(IPv4::from_octets(11, 0, 0, 0)).has_value());
}

TEST(PrefixSet, DuplicateAddIsIdempotent) {
  PrefixSet set;
  set.add(Prefix(IPv4::from_octets(10, 0, 0, 0), 8));
  set.add(Prefix(IPv4::from_octets(10, 0, 0, 0), 8));
  EXPECT_EQ(set.size(), 1u);
}

TEST(PrefixSet, HostPrefixes) {
  PrefixSet set;
  const IPv4 host = IPv4::from_octets(4, 5, 6, 7);
  set.add(Prefix(host, 32));
  EXPECT_TRUE(set.contains(host));
  EXPECT_FALSE(set.contains(IPv4(host.value() + 1)));
}

// Property: match agrees with a linear scan over the inserted prefixes.
class PrefixSetOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixSetOracle, MatchesLinearScan) {
  util::Rng rng(GetParam());
  std::vector<Prefix> prefixes;
  PrefixSet set;
  for (int i = 0; i < 64; ++i) {
    const Prefix p(IPv4(static_cast<std::uint32_t>(rng())),
                   static_cast<int>(8 + rng.below(25)));
    prefixes.push_back(p);
    set.add(p);
  }
  for (int probe = 0; probe < 500; ++probe) {
    // Half random addresses, half inside a random prefix.
    IPv4 ip(static_cast<std::uint32_t>(rng()));
    if (probe % 2 == 0) {
      const Prefix& p = prefixes[rng.below(prefixes.size())];
      ip = p.at(rng.below(p.size()));
    }
    int best = -1;
    for (const Prefix& p : prefixes) {
      if (p.contains(ip)) best = std::max(best, p.length());
    }
    const auto got = set.match(ip);
    if (best < 0) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->length(), best);
      EXPECT_TRUE(got->contains(ip));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixSetOracle,
                         ::testing::Values(100, 200, 300, 400, 500));

}  // namespace
}  // namespace dm::netflow
