// Round-trip property suite for the columnar record store: decode must
// reproduce the encoded (record, direction) sequence EXACTLY — for
// canonical sorted input (the pipeline's case), for arbitrary unsorted
// input, and for adversarial field values (max varints, single-record
// windows, out-of-range ingested minutes) — and seeks, ranges, and
// shard-order appends must agree with the monolithic encoding.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "netflow/columnar_records.h"
#include "util/rng.h"

namespace dm::netflow {
namespace {

struct Oriented {
  FlowRecord record;
  Direction direction = Direction::kInbound;
};

FlowRecord make_record(util::Minute minute, std::uint32_t src,
                       std::uint32_t dst, std::uint16_t src_port,
                       std::uint16_t dst_port, Protocol protocol,
                       TcpFlags flags, std::uint32_t packets,
                       std::uint64_t bytes) {
  FlowRecord r;
  r.minute = minute;
  r.src_ip = IPv4(src);
  r.dst_ip = IPv4(dst);
  r.src_port = src_port;
  r.dst_port = dst_port;
  r.protocol = protocol;
  r.tcp_flags = flags;
  r.packets = packets;
  r.bytes = bytes;
  return r;
}

Oriented random_oriented(util::Rng& rng) {
  constexpr Protocol kProtocols[] = {Protocol::kIpEncap, Protocol::kIcmp,
                                     Protocol::kTcp, Protocol::kUdp};
  Oriented o;
  o.direction = rng.chance(0.5) ? Direction::kInbound : Direction::kOutbound;
  o.record = make_record(
      static_cast<util::Minute>(rng.below(10'000)),
      static_cast<std::uint32_t>(rng.below(1ULL << 32)),
      static_cast<std::uint32_t>(rng.below(1ULL << 32)),
      static_cast<std::uint16_t>(rng.below(65536)),
      static_cast<std::uint16_t>(rng.below(65536)), kProtocols[rng.below(4)],
      static_cast<TcpFlags>(rng.below(64)),
      static_cast<std::uint32_t>(1 + rng.below(1'000'000)),
      rng.uniform_u64(1, std::numeric_limits<std::uint64_t>::max()));
  return o;
}

ColumnarRecords encode(const std::vector<Oriented>& input) {
  ColumnarRecords store;
  for (const Oriented& o : input) store.push_back(o.record, o.direction);
  store.shrink_to_fit();
  return store;
}

void expect_decodes_to(const ColumnarRecords& store,
                       const std::vector<Oriented>& expected) {
  ASSERT_EQ(store.size(), expected.size());
  std::size_t n = 0;
  const auto range = store.all();
  for (auto it = range.begin(); it != range.end(); ++it, ++n) {
    ASSERT_LT(n, expected.size());
    ASSERT_EQ(it.index(), n);
    ASSERT_EQ(*it, expected[n].record) << "record " << n;
    ASSERT_EQ(it.direction(), expected[n].direction) << "direction " << n;
  }
  EXPECT_EQ(n, expected.size());
}

/// Canonical-ish batch: few (vip, direction, minute) groups, ascending
/// remotes inside each — the shape aggregate_shard emits.
std::vector<Oriented> canonical_batch(util::Rng& rng, std::size_t groups,
                                      std::size_t per_group) {
  std::vector<Oriented> out;
  std::uint32_t vip = 0x0a000000;
  for (std::size_t g = 0; g < groups; ++g) {
    vip += static_cast<std::uint32_t>(rng.below(3));
    const auto direction =
        rng.chance(0.5) ? Direction::kInbound : Direction::kOutbound;
    const auto minute = static_cast<util::Minute>(g);
    std::uint32_t remote = 0x55000000 + static_cast<std::uint32_t>(g);
    for (std::size_t i = 0; i < per_group; ++i) {
      remote += static_cast<std::uint32_t>(rng.below(1000));
      Oriented o;
      o.direction = direction;
      const std::uint32_t src = direction == Direction::kInbound ? remote : vip;
      const std::uint32_t dst = direction == Direction::kInbound ? vip : remote;
      o.record = make_record(minute, src, dst,
                             static_cast<std::uint16_t>(1024 + rng.below(100)),
                             80, Protocol::kTcp, TcpFlags::kAck,
                             static_cast<std::uint32_t>(1 + rng.below(20)),
                             40 * (1 + rng.below(30)));
      out.push_back(o);
    }
  }
  return out;
}

TEST(ColumnarRecords, EmptyStore) {
  const ColumnarRecords store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.run_count(), 0u);
  const auto range = store.all();
  EXPECT_TRUE(range.empty());
  EXPECT_TRUE(range.begin() == range.end());
}

TEST(ColumnarRecords, CanonicalBatchRoundTrip) {
  util::Rng rng(101);
  const auto input = canonical_batch(rng, 200, 25);
  const ColumnarRecords store = encode(input);
  EXPECT_EQ(store.run_count(), 200u);
  expect_decodes_to(store, input);
}

TEST(ColumnarRecords, UnsortedRandomRoundTrip) {
  util::Rng rng(202);
  for (int round = 0; round < 8; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::vector<Oriented> input;
    const std::size_t n = 100 + rng.below(2000);
    for (std::size_t i = 0; i < n; ++i) input.push_back(random_oriented(rng));
    expect_decodes_to(encode(input), input);
  }
}

TEST(ColumnarRecords, AdversarialExtremesRoundTrip) {
  constexpr auto kMin = std::numeric_limits<util::Minute>::min();
  constexpr auto kMax = std::numeric_limits<util::Minute>::max();
  constexpr std::uint32_t kIpMax = 0xffffffffu;
  constexpr auto kU32Max = std::numeric_limits<std::uint32_t>::max();
  constexpr auto kU64Max = std::numeric_limits<std::uint64_t>::max();

  std::vector<Oriented> input;
  // Max-varint fields, minute extremes, and maximal minute/key jumps in
  // both directions (ingested traces are not bounded by the generator).
  input.push_back({make_record(kMax, kIpMax, kIpMax, 0xffff, 0xffff,
                               Protocol::kUdp, static_cast<TcpFlags>(0x3f),
                               kU32Max, kU64Max),
                   Direction::kInbound});
  input.push_back({make_record(kMin, 0, 0, 0, 0, Protocol::kIpEncap,
                               TcpFlags::kNone, 0, 0),
                   Direction::kOutbound});
  input.push_back({make_record(-1, kIpMax, 0, 1, 1, Protocol::kIcmp,
                               TcpFlags::kSyn, 1, 1),
                   Direction::kInbound});
  // One window with maximal remote swings: 0 -> max -> 0 (delta zigzag must
  // wrap exactly); same (vip=0 inbound, minute 7) key throughout.
  input.push_back(
      {make_record(7, 0, 0, 2, 2, Protocol::kTcp, TcpFlags::kAck, 2, 2),
       Direction::kInbound});
  input.push_back(
      {make_record(7, kIpMax, 0, 3, 3, Protocol::kTcp, TcpFlags::kAck, 3, 3),
       Direction::kInbound});
  input.push_back(
      {make_record(7, 0, 0, 4, 4, Protocol::kTcp, TcpFlags::kAck, 4, 4),
       Direction::kInbound});

  const ColumnarRecords store = encode(input);
  expect_decodes_to(store, input);
  // The three same-key records must share one run.
  EXPECT_EQ(store.run_count(), 4u);
}

TEST(ColumnarRecords, SingleRecordWindows) {
  util::Rng rng(303);
  std::vector<Oriented> input;
  for (std::size_t i = 0; i < 500; ++i) {
    Oriented o = random_oriented(rng);
    o.record.minute = static_cast<util::Minute>(i);  // every record a new run
    input.push_back(o);
  }
  const ColumnarRecords store = encode(input);
  EXPECT_EQ(store.run_count(), 500u);
  expect_decodes_to(store, input);
}

TEST(ColumnarRecords, SeeksMatchFullDecode) {
  util::Rng rng(404);
  const auto input = canonical_batch(rng, 60, 40);
  const ColumnarRecords store = encode(input);
  const std::size_t n = input.size();

  for (int round = 0; round < 200; ++round) {
    const std::size_t first = rng.below(n + 1);
    const std::size_t last = first + rng.below(n + 1 - first);
    SCOPED_TRACE("range [" + std::to_string(first) + ", " +
                 std::to_string(last) + ")");
    const auto range = store.range(first, last);
    ASSERT_EQ(range.size(), last - first);
    std::size_t i = first;
    for (auto it = range.begin(); it != range.end(); ++it, ++i) {
      ASSERT_LT(i, last);
      ASSERT_EQ(it.index(), i);
      ASSERT_EQ(*it, input[i].record) << "record " << i;
      ASSERT_EQ(it.direction(), input[i].direction);
    }
    ASSERT_EQ(i, last);
  }

  for (int round = 0; round < 200; ++round) {
    const std::size_t i = rng.below(n);
    EXPECT_EQ(store.direction_of(i), input[i].direction) << "direction " << i;
  }
}

TEST(ColumnarRecords, AppendMatchesMonolithicEncoding) {
  util::Rng rng(505);
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const auto input = canonical_batch(rng, 40, 10);

    // Split at random points (possibly mid-run, possibly empty pieces) and
    // re-assemble in order via append.
    const std::size_t pieces = 1 + rng.below(6);
    std::vector<std::size_t> cuts{0, input.size()};
    for (std::size_t c = 1; c < pieces; ++c) {
      cuts.push_back(rng.below(input.size() + 1));
    }
    std::sort(cuts.begin(), cuts.end());

    ColumnarRecords merged;
    for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
      ColumnarRecords piece;
      for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i) {
        piece.push_back(input[i].record, input[i].direction);
      }
      merged.append(std::move(piece));
    }
    expect_decodes_to(merged, input);

    // The merged store must keep encoding correctly past the append.
    std::vector<Oriented> extended = input;
    for (int i = 0; i < 50; ++i) extended.push_back(random_oriented(rng));
    for (std::size_t i = input.size(); i < extended.size(); ++i) {
      merged.push_back(extended[i].record, extended[i].direction);
    }
    expect_decodes_to(merged, extended);
  }
}

TEST(ColumnarRecords, AppendIntoReservedStoreMatches) {
  util::Rng rng(606);
  const auto input = canonical_batch(rng, 30, 8);
  const std::size_t half = input.size() / 2;

  ColumnarRecords a, b;
  for (std::size_t i = 0; i < half; ++i) {
    a.push_back(input[i].record, input[i].direction);
  }
  for (std::size_t i = half; i < input.size(); ++i) {
    b.push_back(input[i].record, input[i].direction);
  }

  ColumnarRecords merged;
  const auto sa = a.buffer_sizes();
  const auto sb = b.buffer_sizes();
  merged.reserve({sa.header_bytes + sb.header_bytes + 40,
                  sa.payload_bytes + sb.payload_bytes, sa.runs + sb.runs,
                  sa.checkpoints + sb.checkpoints});
  merged.append(std::move(a));
  merged.append(std::move(b));
  expect_decodes_to(merged, input);
}

TEST(ColumnarRecords, RangeSupportsVectorConstruction) {
  util::Rng rng(707);
  const auto input = canonical_batch(rng, 10, 10);
  const ColumnarRecords store = encode(input);
  const auto range = store.all();
  const std::vector<FlowRecord> decoded(range.begin(), range.end());
  ASSERT_EQ(decoded.size(), input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(decoded[i], input[i].record) << "record " << i;
  }
}

TEST(ColumnarRecords, CanonicalInputCompressesWellBelowAoS) {
  util::Rng rng(808);
  const auto input = canonical_batch(rng, 500, 20);
  const ColumnarRecords store = encode(input);
  // AoS costs 41 bytes/record (sizeof(FlowRecord) == 40 plus a Direction
  // byte); pipeline-shaped input must come in far below — the tentpole's
  // whole point. 16 bytes/record is a loose ceiling (measured ~11).
  EXPECT_LT(store.encoded_bytes(), 16u * input.size())
      << "bytes/record = "
      << static_cast<double>(store.encoded_bytes()) /
             static_cast<double>(input.size());
}

}  // namespace
}  // namespace dm::netflow
