// Degraded-feed acceptance tests for the salvaging trace reader: for k
// damaged blocks the salvage walk must recover every intact block and the
// IngestReport must describe exactly the injected damage.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <random>
#include <sstream>

#include "fault/fault.h"
#include "netflow/trace_io.h"
#include "util/error.h"
#include "util/rng.h"

namespace dm::netflow {
namespace {

constexpr std::size_t kBlockRecords = 4096;

std::vector<FlowRecord> sample_records(std::size_t n, std::uint64_t seed = 17) {
  util::Rng rng(seed);
  std::vector<FlowRecord> records(n);
  util::Minute minute = 50;
  for (auto& r : records) {
    if (rng.chance(0.02)) ++minute;
    r.minute = minute;
    r.src_ip = IPv4(static_cast<std::uint32_t>(rng()));
    r.dst_ip = IPv4(static_cast<std::uint32_t>(rng()));
    r.src_port = static_cast<std::uint16_t>(rng.below(65536));
    r.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    r.protocol = rng.chance(0.5) ? Protocol::kTcp : Protocol::kUdp;
    r.tcp_flags = static_cast<TcpFlags>(rng.below(64));
    r.packets = static_cast<std::uint32_t>(1 + rng.below(500));
    r.bytes = r.packets * (40 + rng.below(1000));
  }
  return records;
}

std::vector<std::uint8_t> serialize(const std::vector<FlowRecord>& records,
                                    std::uint32_t sampling = 4096) {
  std::stringstream buffer;
  TraceWriter writer(buffer, sampling);
  writer.write_all(records);
  writer.finish();
  const std::string s = buffer.str();
  return {s.begin(), s.end()};
}

SalvageResult salvage(const std::vector<std::uint8_t>& bytes) {
  std::stringstream in(std::string(bytes.begin(), bytes.end()));
  TraceReader reader(in, ReadMode::kSalvage);
  SalvageResult result;
  result.records = reader.read_all();
  result.sampling = reader.sampling_denominator();
  result.report = reader.report();
  return result;
}

/// The records that survive when `lost_blocks` (clean-layout indices) are
/// destroyed: every other block's records, in order.
std::vector<FlowRecord> surviving_records(
    const std::vector<FlowRecord>& records,
    const std::vector<std::uint32_t>& lost_blocks) {
  std::vector<FlowRecord> kept;
  kept.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto block = static_cast<std::uint32_t>(i / kBlockRecords);
    if (std::find(lost_blocks.begin(), lost_blocks.end(), block) ==
        lost_blocks.end()) {
      kept.push_back(records[i]);
    }
  }
  return kept;
}

/// Runs of consecutive block indices — adjacent damaged blocks merge into
/// one lost range during the salvage scan.
std::size_t merged_runs(std::vector<std::uint32_t> blocks) {
  std::sort(blocks.begin(), blocks.end());
  std::size_t runs = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (i == 0 || blocks[i] != blocks[i - 1] + 1) ++runs;
  }
  return runs;
}

TEST(TraceSalvage, CleanTraceReportsClean) {
  const auto records = sample_records(30'000);
  const auto result = salvage(serialize(records));
  EXPECT_EQ(result.records, records);
  EXPECT_EQ(result.sampling, 4096u);
  EXPECT_TRUE(result.report.clean());
  EXPECT_TRUE(result.report.header_valid);
  EXPECT_TRUE(result.report.end_marker_seen);
  EXPECT_EQ(result.report.blocks_decoded, 8u);  // ceil(30000 / 4096)
  EXPECT_EQ(result.report.records_recovered, records.size());
  EXPECT_EQ(result.report.bytes_lost(), 0u);
}

class TraceSalvageDamage : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TraceSalvageDamage, RecoversEveryIntactBlockAfterCorruption) {
  const std::size_t k = GetParam();
  // 40 blocks so even k=10 leaves plenty of intact ones.
  const auto records = sample_records(40 * kBlockRecords);
  auto bytes = serialize(records);
  const auto clean_layout = trace_layout(bytes);
  ASSERT_EQ(clean_layout.size(), 40u);

  fault::BytePlan plan;
  plan.corrupt_blocks = k;
  const fault::ByteDamage damage = fault::FaultInjector(100 + k).corrupt(bytes, plan);
  ASSERT_EQ(damage.corrupted_blocks.size(), k);

  const auto result = salvage(bytes);
  // Every intact block's records come back, in order.
  EXPECT_EQ(result.records, surviving_records(records, damage.corrupted_blocks));
  EXPECT_TRUE(result.report.header_valid);
  EXPECT_TRUE(result.report.end_marker_seen);
  EXPECT_FALSE(result.report.clean());

  // The report describes exactly the injected damage: one lost range per
  // run of adjacent corrupted blocks, each classified as a CRC mismatch,
  // covering exactly the damaged blocks' bytes.
  const std::size_t runs = merged_runs(damage.corrupted_blocks);
  EXPECT_EQ(result.report.blocks_decoded, 40u - k);
  EXPECT_EQ(result.report.lost_ranges.size(), runs);
  EXPECT_EQ(result.report.blocks_skipped, runs);
  EXPECT_EQ(result.report.crc_mismatches, runs);
  EXPECT_EQ(result.report.truncations, 0u);
  EXPECT_EQ(result.report.decode_errors, 0u);
  EXPECT_EQ(result.report.varint_errors, 0u);

  std::uint64_t damaged_bytes = 0;
  for (const std::uint32_t b : damage.corrupted_blocks) {
    damaged_bytes += clean_layout[b].size;
  }
  EXPECT_EQ(result.report.bytes_lost(), damaged_bytes);
  for (const auto& range : result.report.lost_ranges) {
    // Each range starts exactly at a damaged block's start offset.
    const bool at_block_start =
        std::any_of(damage.corrupted_blocks.begin(),
                    damage.corrupted_blocks.end(), [&](std::uint32_t b) {
                      return clean_layout[b].offset == range.offset;
                    });
    EXPECT_TRUE(at_block_start) << "lost range at unexpected offset " << range.offset;
  }
}

TEST_P(TraceSalvageDamage, RecoversEveryIntactBlockAfterMidFileTruncation) {
  const std::size_t k = GetParam();
  const auto records = sample_records(40 * kBlockRecords, 23);
  auto bytes = serialize(records);

  fault::BytePlan plan;
  plan.truncate_blocks = k;
  const fault::ByteDamage damage = fault::FaultInjector(200 + k).corrupt(bytes, plan);
  ASSERT_EQ(damage.truncated_blocks.size(), k);
  ASSERT_GT(damage.bytes_removed, 0u);

  const auto result = salvage(bytes);
  EXPECT_EQ(result.records, surviving_records(records, damage.truncated_blocks));
  EXPECT_TRUE(result.report.end_marker_seen);
  EXPECT_EQ(result.report.blocks_decoded, 40u - k);
  const std::size_t runs = merged_runs(damage.truncated_blocks);
  EXPECT_EQ(result.report.lost_ranges.size(), runs);
  // Each damaged region loses its blocks' bytes minus what truncation
  // physically removed from the file.
  std::uint64_t damaged_bytes = 0;
  const auto clean_layout = trace_layout(serialize(sample_records(40 * kBlockRecords, 23)));
  for (const std::uint32_t b : damage.truncated_blocks) {
    damaged_bytes += clean_layout[b].size;
  }
  EXPECT_EQ(result.report.bytes_lost(), damaged_bytes - damage.bytes_removed);
}

INSTANTIATE_TEST_SUITE_P(DamagedBlocks, TraceSalvageDamage,
                         ::testing::Values(1, 3, 10));

TEST(TraceSalvage, TailTruncationLosesOnlyTheFinalBlock) {
  const auto records = sample_records(6 * kBlockRecords);
  auto bytes = serialize(records);

  fault::BytePlan plan;
  plan.truncate_tail = true;
  const fault::ByteDamage damage = fault::FaultInjector(7).corrupt(bytes, plan);
  ASSERT_TRUE(damage.tail_truncated);

  const auto result = salvage(bytes);
  EXPECT_EQ(result.records, surviving_records(records, {5}));
  EXPECT_FALSE(result.report.end_marker_seen);
  EXPECT_EQ(result.report.blocks_decoded, 5u);
  ASSERT_EQ(result.report.lost_ranges.size(), 1u);
  EXPECT_EQ(result.report.truncations, 1u);
}

TEST(TraceSalvage, DamagedHeaderStillRecoversBlocks) {
  const auto records = sample_records(3 * kBlockRecords);
  auto bytes = serialize(records);
  bytes[0] ^= 0xff;  // destroy the magic

  const auto result = salvage(bytes);
  EXPECT_FALSE(result.report.header_valid);
  EXPECT_FALSE(result.report.clean());
  // All three blocks decode; the mangled header is the only loss.
  EXPECT_EQ(result.records, records);
  EXPECT_EQ(result.report.blocks_decoded, 3u);
  EXPECT_TRUE(result.report.end_marker_seen);
}

TEST(TraceSalvage, StrictModeErrorsAreLocated) {
  const auto records = sample_records(3 * kBlockRecords);
  auto bytes = serialize(records);
  const auto layout = trace_layout(bytes);

  // Flip a payload bit in block 1: strict mode must name the block, the
  // byte offset, and both CRC values.
  bytes[layout[1].payload_offset + 10] ^= 0x01;
  std::stringstream in(std::string(bytes.begin(), bytes.end()));
  TraceReader reader(in);
  try {
    (void)reader.read_all();
    FAIL() << "corrupted trace read strictly must throw";
  } catch (const dm::FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CRC mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("block 1"), std::string::npos) << what;
    EXPECT_NE(what.find("at byte " + std::to_string(layout[1].offset)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("expected 0x"), std::string::npos) << what;
    EXPECT_NE(what.find("actual 0x"), std::string::npos) << what;
  }
}

TEST(TraceSalvage, StrictModeTruncationIsLocated) {
  const auto records = sample_records(2 * kBlockRecords);
  auto bytes = serialize(records);
  const auto layout = trace_layout(bytes);
  bytes.resize(layout[1].payload_offset + 5);  // cut inside block 1's payload

  std::stringstream in(std::string(bytes.begin(), bytes.end()));
  TraceReader reader(in);
  try {
    (void)reader.read_all();
    FAIL() << "truncated trace read strictly must throw";
  } catch (const dm::FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated payload"), std::string::npos) << what;
    EXPECT_NE(what.find("block 1"), std::string::npos) << what;
  }
}

// Randomized corruption soak: arbitrary byte damage must never crash the
// salvage reader, and its report must stay self-consistent. Runs a handful
// of seeds by default; DM_SOAK_SECONDS extends it into the CI soak stage
// (the failing seed is printed on any assertion).
TEST(TraceSalvage, SalvageSoak) {
  const char* env = std::getenv("DM_SOAK_SECONDS");
  const double seconds = env != nullptr ? std::atof(env) : 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(seconds * 1000));

  std::random_device device;
  const auto base_records = sample_records(8 * kBlockRecords, 3);
  const auto clean = serialize(base_records);
  std::size_t iterations = 0;
  do {
    const std::uint64_t seed =
        (static_cast<std::uint64_t>(device()) << 32) | device();
    SCOPED_TRACE("soak seed: " + std::to_string(seed));
    util::Rng rng(seed);

    auto bytes = clean;
    fault::BytePlan plan;
    plan.bit_flips = rng.below(64);
    plan.corrupt_blocks = rng.below(4);
    plan.truncate_blocks = rng.below(3);
    plan.truncate_tail = rng.chance(0.3);
    fault::FaultInjector(seed).corrupt(bytes, plan);
    // Occasionally hack off an arbitrary tail as well.
    if (rng.chance(0.25) && !bytes.empty()) {
      bytes.resize(1 + rng.below(bytes.size()));
    }

    const auto result = salvage(bytes);
    EXPECT_LE(result.records.size(), base_records.size());
    EXPECT_EQ(result.records.size(), result.report.records_recovered);
    EXPECT_EQ(result.report.bytes_scanned, bytes.size());
    EXPECT_LE(result.report.bytes_lost(), bytes.size());
    EXPECT_EQ(result.report.lost_ranges.size(), result.report.blocks_skipped);
    // Whatever was recovered must be a subsequence of the original records.
    auto it = base_records.begin();
    for (const auto& r : result.records) {
      it = std::find(it, base_records.end(), r);
      ASSERT_NE(it, base_records.end())
          << "salvage fabricated a record that was never written";
      ++it;
    }
    ++iterations;
  } while (std::chrono::steady_clock::now() < deadline || iterations < 5);
  SUCCEED() << iterations << " soak iterations";
}

}  // namespace
}  // namespace dm::netflow
