// Property test for the sharded window aggregation: splitting the same
// record stream into arbitrary shards and feeding the shards in any order
// must produce the same WindowedTrace — i.e. the shard merge is associative
// and order-independent. This is exactly what the parallel pipeline relies
// on when it aggregates per-shard record batches whose concatenation order
// is an implementation detail of upstream sharding.
#include "netflow/window_aggregator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "exec/thread_pool.h"
#include "util/rng.h"

namespace dm::netflow {
namespace {

PrefixSet cloud_space() {
  PrefixSet set;
  set.add(Prefix(IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

PrefixSet blacklist() {
  PrefixSet set;
  set.add(Prefix(IPv4::from_octets(4, 9, 0, 0), 16));
  return set;
}

/// A random mix of inbound/outbound/unclassifiable records over a handful of
/// VIPs and minutes — small enough that windows collide often, which is
/// where merge bugs would live.
std::vector<FlowRecord> random_records(util::Rng& rng, std::size_t count) {
  std::vector<FlowRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FlowRecord r;
    r.minute = static_cast<util::Minute>(rng.below(10));
    const IPv4 vip = IPv4::from_octets(
        100, 64, 0, static_cast<std::uint8_t>(1 + rng.below(5)));
    // Small remote pool (incl. blacklisted hosts) so duplicates are common.
    const IPv4 remote = IPv4::from_octets(
        4, static_cast<std::uint8_t>(rng.chance(0.2) ? 9 : 1), 0,
        static_cast<std::uint8_t>(1 + rng.below(20)));
    const bool inbound = rng.chance(0.5);
    r.src_ip = inbound ? remote : vip;
    r.dst_ip = inbound ? vip : remote;
    if (rng.chance(0.05)) r.dst_ip = r.src_ip;  // unclassifiable
    r.src_port = static_cast<std::uint16_t>(1 + rng.below(4000));
    r.dst_port = rng.chance(0.3)
                     ? static_cast<std::uint16_t>(rng.chance(0.5) ? 25 : 1433)
                     : static_cast<std::uint16_t>(1 + rng.below(4000));
    constexpr Protocol kProtocols[] = {Protocol::kTcp, Protocol::kUdp,
                                       Protocol::kIcmp, Protocol::kIpEncap};
    r.protocol = kProtocols[rng.below(4)];
    if (r.protocol == Protocol::kTcp) {
      r.tcp_flags = rng.chance(0.3) ? TcpFlags::kSyn
                                    : (TcpFlags::kAck | TcpFlags::kPsh);
    }
    r.packets = static_cast<std::uint32_t>(1 + rng.below(5));
    r.bytes = r.packets * 120;
    out.push_back(r);
  }
  return out;
}

auto window_tuple(const VipMinuteStats& w) {
  return std::make_tuple(
      w.vip.value(), w.minute, w.direction, w.packets, w.bytes, w.tcp_packets,
      w.udp_packets, w.icmp_packets, w.ipencap_packets, w.syn_packets,
      w.null_scan_packets, w.xmas_scan_packets, w.bare_rst_packets,
      w.dns_response_packets, w.flows, w.unique_remote_ips, w.smtp_flows,
      w.unique_smtp_remotes, w.remote_admin_flows, w.unique_admin_remotes,
      w.sql_flows, w.smtp_packets, w.admin_packets, w.sql_packets,
      w.blacklist_flows, w.unique_blacklist_remotes, w.blacklist_packets,
      w.first_record, w.last_record);
}

void expect_same_trace(const WindowedTrace& a, const WindowedTrace& b,
                       const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.unclassified_records(), b.unclassified_records());
  ASSERT_EQ(a.windows().size(), b.windows().size());
  for (std::size_t i = 0; i < a.windows().size(); ++i) {
    ASSERT_EQ(window_tuple(a.windows()[i]), window_tuple(b.windows()[i]))
        << "window " << i;
  }
  // Record CONTENT per window must match as a multiset: shard order may
  // permute ties (identical sort keys) inside a window, never across one.
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.windows().size(); ++i) {
    const auto ra = a.records_of(a.windows()[i]);
    const auto rb = b.records_of(b.windows()[i]);
    ASSERT_EQ(ra.size(), rb.size());
    auto va = std::vector<FlowRecord>(ra.begin(), ra.end());
    auto vb = std::vector<FlowRecord>(rb.begin(), rb.end());
    const auto full = [](const FlowRecord& x, const FlowRecord& y) {
      return std::tie(x.minute, x.src_ip, x.dst_ip, x.src_port, x.dst_port,
                      x.protocol, x.tcp_flags, x.packets, x.bytes) <
             std::tie(y.minute, y.src_ip, y.dst_ip, y.src_port, y.dst_port,
                      y.protocol, y.tcp_flags, y.packets, y.bytes);
    };
    std::sort(va.begin(), va.end(), full);
    std::sort(vb.begin(), vb.end(), full);
    EXPECT_EQ(va, vb) << "records of window " << i;
  }
}

TEST(WindowShardMerge, PartitionAndOrderIndependent) {
  util::Rng rng(4096);
  const auto space = cloud_space();
  const auto tds = blacklist();

  for (int round = 0; round < 12; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::size_t count = 200 + rng.below(1800);
    const std::vector<FlowRecord> base = random_records(rng, count);
    const WindowedTrace expected = aggregate_windows(base, space, &tds);

    // Random partition into 1..8 shards, reassembled in a random shard
    // order.
    const std::size_t shard_count = 1 + rng.below(8);
    std::vector<std::vector<FlowRecord>> shards(shard_count);
    for (const FlowRecord& r : base) {
      shards[rng.below(shard_count)].push_back(r);
    }
    std::vector<std::size_t> order(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) order[s] = s;
    rng.shuffle(order);
    std::vector<FlowRecord> reassembled;
    reassembled.reserve(base.size());
    for (std::size_t s : order) {
      reassembled.insert(reassembled.end(), shards[s].begin(), shards[s].end());
    }

    const WindowedTrace actual = aggregate_windows(reassembled, space, &tds);
    expect_same_trace(expected, actual, "random partition");
  }
}

TEST(WindowShardMerge, ThreadedAggregationMatchesSerial) {
  util::Rng rng(777);
  const auto space = cloud_space();
  const auto tds = blacklist();
  const std::vector<FlowRecord> base = random_records(rng, 5000);

  const WindowedTrace serial = aggregate_windows(base, space, &tds, nullptr);
  for (unsigned threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool(threads);
    const WindowedTrace threaded = aggregate_windows(base, space, &tds, &pool);
    // With identical input order the canonical sort is a strict total
    // order, so even record-for-record output must match exactly.
    const auto serial_records = serial.records();
    const auto threaded_records = threaded.records();
    ASSERT_EQ(serial_records.size(), threaded_records.size());
    auto tit = threaded_records.begin();
    for (auto sit = serial_records.begin(); sit != serial_records.end();
         ++sit, ++tit) {
      ASSERT_EQ(*sit, *tit) << "record " << sit.index();
      ASSERT_EQ(sit.direction(), tit.direction())
          << "direction " << sit.index();
    }
    expect_same_trace(serial, threaded, "threaded");
  }
}

}  // namespace
}  // namespace dm::netflow
