#include "netflow/flow_record.h"

#include <gtest/gtest.h>

namespace dm::netflow {
namespace {

FlowRecord sample() {
  FlowRecord r;
  r.minute = 1501;
  r.src_ip = IPv4::from_octets(4, 1, 2, 3);
  r.dst_ip = IPv4::from_octets(100, 64, 0, 9);
  r.src_port = 51'000;
  r.dst_port = 443;
  r.protocol = Protocol::kTcp;
  r.tcp_flags = TcpFlags::kSyn | TcpFlags::kAck;
  r.packets = 12;
  r.bytes = 4'800;
  return r;
}

TEST(OrientedFlow, InboundAccessors) {
  const FlowRecord r = sample();
  const OrientedFlow f{&r, Direction::kInbound};
  EXPECT_EQ(f.vip(), r.dst_ip);
  EXPECT_EQ(f.remote_ip(), r.src_ip);
  EXPECT_EQ(f.vip_port(), 443);
  EXPECT_EQ(f.remote_port(), 51'000);
  EXPECT_EQ(f.service_port(), 443);
}

TEST(OrientedFlow, OutboundAccessors) {
  FlowRecord r = sample();
  std::swap(r.src_ip, r.dst_ip);
  std::swap(r.src_port, r.dst_port);
  const OrientedFlow f{&r, Direction::kOutbound};
  EXPECT_EQ(f.vip(), r.src_ip);
  EXPECT_EQ(f.remote_ip(), r.dst_ip);
  EXPECT_EQ(f.vip_port(), 443);
  EXPECT_EQ(f.remote_port(), 51'000);
  // The targeted application is the flow's destination port either way.
  EXPECT_EQ(f.service_port(), 51'000);
}

TEST(Direction, Helpers) {
  EXPECT_EQ(opposite(Direction::kInbound), Direction::kOutbound);
  EXPECT_EQ(opposite(Direction::kOutbound), Direction::kInbound);
  EXPECT_EQ(to_string(Direction::kInbound), "inbound");
  EXPECT_EQ(to_string(Direction::kOutbound), "outbound");
}

TEST(FlowRecord, ToStringMentionsKeyFields) {
  const std::string text = to_string(sample());
  EXPECT_NE(text.find("4.1.2.3"), std::string::npos);
  EXPECT_NE(text.find("100.64.0.9"), std::string::npos);
  EXPECT_NE(text.find("443"), std::string::npos);
  EXPECT_NE(text.find("SYN|ACK"), std::string::npos);
  EXPECT_NE(text.find("pkts=12"), std::string::npos);
}

TEST(FlowRecord, EqualityIsFieldWise) {
  FlowRecord a = sample();
  FlowRecord b = sample();
  EXPECT_EQ(a, b);
  b.packets += 1;
  EXPECT_NE(a, b);
}

TEST(Protocol, Names) {
  EXPECT_EQ(to_string(Protocol::kTcp), "TCP");
  EXPECT_EQ(to_string(Protocol::kUdp), "UDP");
  EXPECT_EQ(to_string(Protocol::kIcmp), "ICMP");
  EXPECT_EQ(to_string(Protocol::kIpEncap), "IPENCAP");
}

}  // namespace
}  // namespace dm::netflow
