// Differential suite for the batch decode pipeline. Two oracles, two
// layers:
//
//   1. get_varint_swar vs get_varint — the SWAR kernel must decode every
//      well-formed LEB128 encoding (1..10 bytes, including the 9/10-byte
//      fallback lengths and boundary bit-widths) to the same value and the
//      same end pointer as the scalar loop.
//   2. BlockCursor vs Cursor — for any store (round-trip fixtures,
//      adversarial extremes, shard-order appends), any seek position, and
//      any clip limit, the concatenated DecodedBlocks must be field-for-
//      field identical to the scalar Cursor stream, with a run_mask that
//      marks exactly the run-start rows. This is the invariant the whole
//      block pipeline (aggregation, detection, spill reads) rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "netflow/columnar_records.h"
#include "netflow/varint.h"
#include "util/rng.h"

namespace dm::netflow {
namespace {

// --- SWAR varint kernel vs scalar oracle -------------------------------

TEST(VarintSwar, AllBitWidthsMatchScalar) {
  // One value per significant-bit count 0..64, plus the exact boundaries
  // where the encoded length changes (2^7k - 1 and 2^7k).
  std::vector<std::uint64_t> values{0};
  for (unsigned bits = 1; bits <= 64; ++bits) {
    const std::uint64_t top = bits == 64 ? ~std::uint64_t{0}
                                         : (std::uint64_t{1} << bits) - 1;
    values.push_back(top);
    values.push_back(top >> 1 | 1);
  }
  for (unsigned k = 1; k <= 9; ++k) {
    values.push_back((std::uint64_t{1} << (7 * k)) - 1);  // last k-byte value
    if (7 * k < 64) values.push_back(std::uint64_t{1} << (7 * k));
  }
  values.push_back(std::numeric_limits<std::uint64_t>::max());

  for (const std::uint64_t v : values) {
    SCOPED_TRACE("value " + std::to_string(v));
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    buf.resize(buf.size() + kSwarRecordSlack, 0);  // SWAR word-read slack

    const std::uint8_t* scalar = buf.data();
    const std::uint8_t* swar = buf.data();
    EXPECT_EQ(get_varint(scalar), v);
    EXPECT_EQ(get_varint_swar(swar), v);
    EXPECT_EQ(swar, scalar) << "end pointers diverge";
  }
}

TEST(VarintSwar, RandomStreamsMatchScalar) {
  util::Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::vector<std::uint64_t> values;
    std::vector<std::uint8_t> buf;
    const std::size_t n = 200 + rng.below(800);
    for (std::size_t i = 0; i < n; ++i) {
      // Skew toward small values (the columnar payload's distribution) but
      // keep a tail of full-width ones that force the scalar fallback.
      const unsigned bits = static_cast<unsigned>(1 + rng.below(64));
      const std::uint64_t mask =
          bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
      values.push_back(rng.uniform_u64(0, mask));
      put_varint(buf, values.back());
    }
    buf.resize(buf.size() + kSwarRecordSlack, 0);

    const std::uint8_t* scalar = buf.data();
    const std::uint8_t* swar = buf.data();
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(get_varint_swar(swar), values[i]) << "varint " << i;
      ASSERT_EQ(get_varint(scalar), values[i]);
      ASSERT_EQ(swar, scalar) << "end pointers diverge at varint " << i;
    }
  }
}

TEST(VarintSwar, AdjacentContinuationBytesDoNotBleed) {
  // A 1-byte varint followed by 0xff... continuation bytes: the SWAR word
  // load sees the neighbours, but the stop-bit scan must cut at byte 0.
  std::vector<std::uint8_t> buf{0x05};
  buf.resize(1 + kSwarRecordSlack, 0xff);
  const std::uint8_t* p = buf.data();
  EXPECT_EQ(get_varint_swar(p), 5u);
  EXPECT_EQ(p, buf.data() + 1);
}

// --- BlockCursor vs Cursor ---------------------------------------------

struct Oriented {
  FlowRecord record;
  Direction direction = Direction::kInbound;
};

FlowRecord make_record(util::Minute minute, std::uint32_t src,
                       std::uint32_t dst, std::uint16_t src_port,
                       std::uint16_t dst_port, Protocol protocol,
                       TcpFlags flags, std::uint32_t packets,
                       std::uint64_t bytes) {
  FlowRecord r;
  r.minute = minute;
  r.src_ip = IPv4(src);
  r.dst_ip = IPv4(dst);
  r.src_port = src_port;
  r.dst_port = dst_port;
  r.protocol = protocol;
  r.tcp_flags = flags;
  r.packets = packets;
  r.bytes = bytes;
  return r;
}

Oriented random_oriented(util::Rng& rng) {
  constexpr Protocol kProtocols[] = {Protocol::kIpEncap, Protocol::kIcmp,
                                     Protocol::kTcp, Protocol::kUdp};
  Oriented o;
  o.direction = rng.chance(0.5) ? Direction::kInbound : Direction::kOutbound;
  o.record = make_record(
      static_cast<util::Minute>(rng.below(10'000)),
      static_cast<std::uint32_t>(rng.below(1ULL << 32)),
      static_cast<std::uint32_t>(rng.below(1ULL << 32)),
      static_cast<std::uint16_t>(rng.below(65536)),
      static_cast<std::uint16_t>(rng.below(65536)), kProtocols[rng.below(4)],
      static_cast<TcpFlags>(rng.below(64)),
      static_cast<std::uint32_t>(1 + rng.below(1'000'000)),
      rng.uniform_u64(1, std::numeric_limits<std::uint64_t>::max()));
  return o;
}

ColumnarRecords encode(const std::vector<Oriented>& input) {
  ColumnarRecords store;
  for (const Oriented& o : input) store.push_back(o.record, o.direction);
  store.shrink_to_fit();
  return store;
}

/// Canonical-ish batch with run lengths straddling the block capacity:
/// some runs shorter than 64 records, some far longer, so blocks cover
/// run-spans-block, block-spans-runs, and exact-boundary cases.
std::vector<Oriented> canonical_batch(util::Rng& rng, std::size_t groups) {
  constexpr std::size_t kRunShapes[] = {1, 3, 63, 64, 65, 200};
  std::vector<Oriented> out;
  std::uint32_t vip = 0x0a000000;
  for (std::size_t g = 0; g < groups; ++g) {
    vip += static_cast<std::uint32_t>(rng.below(3));
    const auto direction =
        rng.chance(0.5) ? Direction::kInbound : Direction::kOutbound;
    const auto minute = static_cast<util::Minute>(g);
    std::uint32_t remote = 0x55000000 + static_cast<std::uint32_t>(g);
    const std::size_t per_group = kRunShapes[rng.below(6)];
    for (std::size_t i = 0; i < per_group; ++i) {
      remote += static_cast<std::uint32_t>(rng.below(1000));
      Oriented o;
      o.direction = direction;
      const std::uint32_t src = direction == Direction::kInbound ? remote : vip;
      const std::uint32_t dst = direction == Direction::kInbound ? vip : remote;
      o.record = make_record(minute, src, dst,
                             static_cast<std::uint16_t>(1024 + rng.below(100)),
                             80, Protocol::kTcp, TcpFlags::kAck,
                             static_cast<std::uint32_t>(1 + rng.below(20)),
                             40 * (1 + rng.below(30)));
      out.push_back(o);
    }
  }
  return out;
}

/// Drains `blocks` and checks every decoded field, base_index, and run_mask
/// bit against the scalar Cursor stream `cursor` (both already positioned
/// at `first`), expecting exactly `last - first` records.
void expect_blocks_match_cursor(ColumnarRecords::BlockCursor blocks,
                                ColumnarRecords::Cursor cursor,
                                std::size_t first, std::size_t last,
                                const ColumnarView& view) {
  DecodedBlock block;
  std::size_t i = first;
  while (blocks.next(block)) {
    ASSERT_GT(block.count, 0u);
    ASSERT_LE(block.count, +DecodedBlock::kCapacity);
    ASSERT_EQ(block.base_index, i);
    for (std::size_t k = 0; k < block.count; ++k, ++i) {
      ASSERT_LT(i, last) << "block decoded past the limit";
      ASSERT_TRUE(cursor.next());
      const FlowRecord& r = cursor.record();
      const auto dir = static_cast<Direction>(block.direction[k]);
      SCOPED_TRACE("record " + std::to_string(i));
      ASSERT_EQ(dir, cursor.direction());
      const IPv4 vip = dir == Direction::kInbound ? r.dst_ip : r.src_ip;
      const IPv4 remote = dir == Direction::kInbound ? r.src_ip : r.dst_ip;
      ASSERT_EQ(block.vip[k], vip.value());
      ASSERT_EQ(block.remote[k], remote.value());
      ASSERT_EQ(block.minute[k], r.minute);
      ASSERT_EQ(block.src_port[k], r.src_port);
      ASSERT_EQ(block.dst_port[k], r.dst_port);
      ASSERT_EQ(static_cast<Protocol>(block.protocol[k]), r.protocol);
      ASSERT_EQ(static_cast<TcpFlags>(block.tcp_flags[k]), r.tcp_flags);
      ASSERT_EQ(block.packets[k], r.packets);
      ASSERT_EQ(block.bytes[k], r.bytes);
      // run_mask bit k must equal "record i is some run's first record".
      const bool is_run_start =
          std::binary_search(view.run_starts, view.run_starts + view.runs,
                             static_cast<std::uint32_t>(i));
      ASSERT_EQ(((block.run_mask >> k) & 1) != 0, is_run_start)
          << "run_mask bit " << k;
    }
  }
  EXPECT_EQ(block.count, 0u);  // exhausted next() must report an empty block
  EXPECT_TRUE(blocks.done());
  EXPECT_EQ(i, last);
  EXPECT_FALSE(cursor.next()) << "Cursor has records the blocks missed";
}

void expect_block_equivalence(const ColumnarRecords& store,
                              const std::vector<Oriented>& input) {
  ASSERT_EQ(store.size(), input.size());
  const ColumnarView view = store.view();

  // Full scan from 0.
  expect_blocks_match_cursor(store.block_cursor_at(0), store.cursor_at(0), 0,
                             store.size(), view);

  // Seeks: run starts, mid-run positions, block-capacity strides, the end.
  util::Rng rng(0xb10c);
  std::vector<std::size_t> seeks{0, store.size()};
  for (int s = 0; s < 40; ++s) seeks.push_back(rng.below(store.size() + 1));
  for (std::size_t r = 0; r < view.runs; r += 1 + view.runs / 16) {
    seeks.push_back(view.run_starts[r]);                // run starts: O(1) path
    seeks.push_back(std::min(store.size(),
                             view.run_starts[r] + std::size_t{1}));  // mid-run
  }
  for (const std::size_t first : seeks) {
    SCOPED_TRACE("seek " + std::to_string(first));
    expect_blocks_match_cursor(store.block_cursor_at(first),
                               store.cursor_at(first), first, store.size(),
                               view);
  }

  // Clipped ranges, including clips that land mid-block and mid-run.
  for (int s = 0; s < 40; ++s) {
    const std::size_t first = rng.below(store.size() + 1);
    const std::size_t last = first + rng.below(store.size() + 1 - first);
    SCOPED_TRACE("clip [" + std::to_string(first) + ", " +
                 std::to_string(last) + ")");
    auto blocks = store.block_cursor_at(first);
    blocks.clip(last);
    auto cursor = store.cursor_at(first);
    cursor.clip(last);
    expect_blocks_match_cursor(blocks, cursor, first, last, view);
  }
}

TEST(ColumnarBlocks, EmptyStore) {
  const ColumnarRecords store;
  auto blocks = store.block_cursor_at(0);
  DecodedBlock block;
  block.count = 99;  // stale scratch: next() must clear it
  EXPECT_FALSE(blocks.next(block));
  EXPECT_EQ(block.count, 0u);
  EXPECT_TRUE(blocks.done());
}

TEST(ColumnarBlocks, CanonicalBatchMatchesCursor) {
  util::Rng rng(111);
  const auto input = canonical_batch(rng, 150);
  expect_block_equivalence(encode(input), input);
}

TEST(ColumnarBlocks, UnsortedRandomMatchesCursor) {
  util::Rng rng(222);
  std::vector<Oriented> input;
  for (std::size_t i = 0; i < 3000; ++i) input.push_back(random_oriented(rng));
  // Every record is (nearly) its own run and all fields are full-width —
  // worst case for the SWAR path and the run-broadcast loop alike.
  expect_block_equivalence(encode(input), input);
}

TEST(ColumnarBlocks, AdversarialExtremesMatchCursor) {
  constexpr auto kMin = std::numeric_limits<util::Minute>::min();
  constexpr auto kMax = std::numeric_limits<util::Minute>::max();
  constexpr std::uint32_t kIpMax = 0xffffffffu;
  constexpr auto kU32Max = std::numeric_limits<std::uint32_t>::max();
  constexpr auto kU64Max = std::numeric_limits<std::uint64_t>::max();

  std::vector<Oriented> input;
  input.push_back({make_record(kMax, kIpMax, kIpMax, 0xffff, 0xffff,
                               Protocol::kUdp, static_cast<TcpFlags>(0x3f),
                               kU32Max, kU64Max),
                   Direction::kInbound});
  input.push_back({make_record(kMin, 0, 0, 0, 0, Protocol::kIpEncap,
                               TcpFlags::kNone, 0, 0),
                   Direction::kOutbound});
  // One long run of maximal remote swings (0 <-> max zigzag deltas) so the
  // 10-byte scalar-fallback encodings appear *inside* a SWAR-decoded run.
  for (int i = 0; i < 200; ++i) {
    input.push_back({make_record(7, (i % 2) != 0 ? kIpMax : 0u, 0,
                                 static_cast<std::uint16_t>(i), 3,
                                 Protocol::kTcp, TcpFlags::kAck,
                                 kU32Max - static_cast<std::uint32_t>(i),
                                 kU64Max - static_cast<std::uint64_t>(i)),
                     Direction::kInbound});
  }
  expect_block_equivalence(encode(input), input);
}

TEST(ColumnarBlocks, AppendedStoreMatchesCursor) {
  util::Rng rng(333);
  const auto input = canonical_batch(rng, 80);

  // Shard-order append with cuts that can land mid-run: the merged store's
  // run/checkpoint layout differs from the monolithic encoding, but blocks
  // must still mirror the cursor over the merged view.
  std::vector<std::size_t> cuts{0, input.size()};
  for (int c = 0; c < 5; ++c) cuts.push_back(rng.below(input.size() + 1));
  std::sort(cuts.begin(), cuts.end());

  ColumnarRecords merged;
  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    ColumnarRecords piece;
    for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i) {
      piece.push_back(input[i].record, input[i].direction);
    }
    merged.append(std::move(piece));
  }
  expect_block_equivalence(merged, input);
}

TEST(ColumnarBlocks, BlockCursorAdoptsMidRunCursorState) {
  util::Rng rng(444);
  const auto input = canonical_batch(rng, 60);
  const ColumnarRecords store = encode(input);

  // Advance a scalar cursor a few records past a seek point, then hand it
  // to a BlockCursor: the adopted delta state must continue exactly.
  for (const std::size_t first : {std::size_t{0}, store.size() / 3}) {
    auto cursor = store.cursor_at(first);
    std::size_t advanced = first;
    for (int i = 0; i < 7 && cursor.next(); ++i) ++advanced;
    auto oracle = store.cursor_at(advanced);
    expect_blocks_match_cursor(ColumnarRecords::BlockCursor(cursor), oracle,
                               advanced, store.size(), store.view());
  }
}

}  // namespace
}  // namespace dm::netflow
