// Round-trip and property suite for the spill tier (DESIGN.md §5f): a
// record sequence pushed through SpillWriter → sealed segment files →
// mmap'd cursor decode must reproduce EXACTLY what the resident
// ColumnarRecords path produces — for pipeline-shaped shards, adversarial
// shard shapes (empty shards, single-run segments, max-delta remote
// swings), and for every seek/range/direction_of access pattern, including
// ranges that straddle segment boundaries.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "netflow/columnar_records.h"
#include "netflow/segment_store.h"
#include "util/rng.h"

namespace dm::netflow {
namespace {

namespace fs = std::filesystem;

struct Oriented {
  FlowRecord record;
  Direction direction = Direction::kInbound;
};

FlowRecord make_record(util::Minute minute, std::uint32_t src,
                       std::uint32_t dst, std::uint16_t src_port,
                       std::uint16_t dst_port, Protocol protocol,
                       TcpFlags flags, std::uint32_t packets,
                       std::uint64_t bytes) {
  FlowRecord r;
  r.minute = minute;
  r.src_ip = IPv4(src);
  r.dst_ip = IPv4(dst);
  r.src_port = src_port;
  r.dst_port = dst_port;
  r.protocol = protocol;
  r.tcp_flags = flags;
  r.packets = packets;
  r.bytes = bytes;
  return r;
}

/// Canonical-ish batch: few (vip, direction, minute) groups, ascending
/// remotes inside each — the shape aggregate_shard emits.
std::vector<Oriented> canonical_batch(util::Rng& rng, std::size_t groups,
                                      std::size_t per_group) {
  std::vector<Oriented> out;
  std::uint32_t vip = 0x0a000000;
  for (std::size_t g = 0; g < groups; ++g) {
    vip += static_cast<std::uint32_t>(rng.below(3));
    const auto direction =
        rng.chance(0.5) ? Direction::kInbound : Direction::kOutbound;
    const auto minute = static_cast<util::Minute>(g);
    std::uint32_t remote = 0x55000000 + static_cast<std::uint32_t>(g);
    for (std::size_t i = 0; i < per_group; ++i) {
      remote += static_cast<std::uint32_t>(rng.below(1000));
      Oriented o;
      o.direction = direction;
      const std::uint32_t src = direction == Direction::kInbound ? remote : vip;
      const std::uint32_t dst = direction == Direction::kInbound ? vip : remote;
      o.record = make_record(minute, src, dst,
                             static_cast<std::uint16_t>(1024 + rng.below(100)),
                             80, Protocol::kTcp, TcpFlags::kAck,
                             static_cast<std::uint32_t>(1 + rng.below(20)),
                             40 * (1 + rng.below(30)));
      out.push_back(o);
    }
  }
  return out;
}

ColumnarRecords encode(const std::vector<Oriented>& input) {
  ColumnarRecords store;
  for (const Oriented& o : input) store.push_back(o.record, o.direction);
  return store;
}

void expect_decodes_to(const RecordStore& store,
                       const std::vector<Oriented>& expected) {
  ASSERT_EQ(store.size(), expected.size());
  std::size_t n = 0;
  const auto range = store.all();
  for (auto it = range.begin(); it != range.end(); ++it, ++n) {
    ASSERT_LT(n, expected.size());
    ASSERT_EQ(it.index(), n);
    ASSERT_EQ(*it, expected[n].record) << "record " << n;
    ASSERT_EQ(it.direction(), expected[n].direction) << "direction " << n;
  }
  EXPECT_EQ(n, expected.size());
}

fs::path scratch_dir(const std::string& suffix) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("dm_segment_" + std::to_string(::getpid()) + "_" + suffix);
  fs::remove_all(dir);
  return dir;
}

/// Spill config with a threshold small enough that `shards` of a smoke-size
/// batch seal several segments.
SpillConfig tiny_spill(const fs::path& dir, std::uint64_t threshold_bytes) {
  SpillConfig config;
  config.directory = dir.string();
  // policy threshold = min(max(segment_bytes, 1MiB), max(budget/2, 1MiB));
  // both knobs floor at 1 MiB, so sub-MiB segments need the test to feed
  // shards whose encoded size crosses 1 MiB — or simply accept the floor.
  config.segment_bytes = threshold_bytes;
  config.ram_budget_bytes = 2 * threshold_bytes;
  return config;
}

/// Pushes `input` through a SpillWriter in `shard_sizes`-sized shards.
RecordStore spill(const std::vector<Oriented>& input,
                  const std::vector<std::size_t>& shard_sizes,
                  const SpillConfig& config) {
  SpillWriter writer(config);
  std::size_t i = 0;
  for (const std::size_t size : shard_sizes) {
    ColumnarRecords shard;
    for (std::size_t k = 0; k < size && i < input.size(); ++k, ++i) {
      shard.push_back(input[i].record, input[i].direction);
    }
    writer.append(std::move(shard));
  }
  // Remainder in one final shard.
  ColumnarRecords tail;
  for (; i < input.size(); ++i) {
    tail.push_back(input[i].record, input[i].direction);
  }
  writer.append(std::move(tail));
  return std::move(writer).finish();
}

TEST(SegmentStore, WriteMapRoundTrip) {
  util::Rng rng(111);
  const auto input = canonical_batch(rng, 120, 30);
  const ColumnarRecords resident = encode(input);

  const fs::path dir = scratch_dir("write_map");
  fs::create_directories(dir);
  const std::string path = (dir / "seg-000000.dmseg").string();
  write_segment_file(path, resident);

  const auto mapped = MappedSegment::map(path);
  ASSERT_NE(mapped, nullptr);
  EXPECT_TRUE(mapped->body_crc_ok());
  EXPECT_EQ(mapped->meta().records, input.size());
  EXPECT_EQ(mapped->meta().runs, resident.run_count());

  // Full decode through the mapped view must equal the resident decode.
  ColumnarRecords::Cursor cursor;
  cursor.reset(mapped->view(), mapped->view().records);
  std::size_t n = 0;
  while (cursor.next()) {
    ASSERT_LT(n, input.size());
    ASSERT_EQ(cursor.record(), input[n].record) << "record " << n;
    ASSERT_EQ(cursor.direction(), input[n].direction);
    ++n;
  }
  EXPECT_EQ(n, input.size());

  // Mid-segment seek through the mapped view.
  for (int round = 0; round < 100; ++round) {
    const std::size_t at = rng.below(input.size());
    auto c = ColumnarRecords::seek(mapped->view(), at);
    ASSERT_TRUE(c.next());
    EXPECT_EQ(c.record(), input[at].record) << "seek " << at;
    EXPECT_EQ(c.direction(), input[at].direction);
  }
  fs::remove_all(dir);
}

TEST(SegmentStore, EmptySegmentFileRoundTrips) {
  const fs::path dir = scratch_dir("empty_seg");
  fs::create_directories(dir);
  const std::string path = (dir / "seg-000000.dmseg").string();
  write_segment_file(path, ColumnarRecords());
  const auto mapped = MappedSegment::map(path);
  ASSERT_NE(mapped, nullptr);
  EXPECT_EQ(mapped->meta().records, 0u);
  ColumnarRecords::Cursor cursor;
  cursor.reset(mapped->view(), mapped->view().records);
  EXPECT_FALSE(cursor.next());
  fs::remove_all(dir);
}

TEST(SegmentStore, SpilledDecodeMatchesResident) {
  util::Rng rng(222);
  // ~300k records ≈ 3+ MiB encoded: comfortably past the policy's 1 MiB
  // seal floor, so the writer seals several segments.
  const auto input = canonical_batch(rng, 3000, 100);

  const fs::path dir = scratch_dir("equiv");
  // Tiny threshold (the 1 MiB floor) over a multi-MiB batch → several
  // segments; irregular shard sizes cross segment boundaries arbitrarily.
  std::vector<std::size_t> shard_sizes;
  for (std::size_t done = 0; done < input.size();) {
    const std::size_t s = 1 + rng.below(20'000);
    shard_sizes.push_back(s);
    done += s;
  }
  const RecordStore spilled = spill(input, shard_sizes, tiny_spill(dir, 1));
  ASSERT_TRUE(spilled.spilled());
  EXPECT_GE(spilled.segments().segment_count(), 2u);
  expect_decodes_to(spilled, input);
  fs::remove_all(dir);
}

TEST(SegmentStore, EmptyAndSingleRecordShards) {
  util::Rng rng(333);
  // Single-record runs (every record its own window) pushed one per shard,
  // with an empty shard between each — and enough of them (~120k at ~20
  // encoded bytes each) that the writer still seals multiple segments.
  const auto input = canonical_batch(rng, 120'000, 1);

  const fs::path dir = scratch_dir("tiny_shards");
  // Shard sizes 0 and 1: every append is empty or one record.
  std::vector<std::size_t> shard_sizes;
  for (std::size_t i = 0; i < input.size(); ++i) {
    shard_sizes.push_back(0);
    shard_sizes.push_back(1);
  }
  const RecordStore store = spill(input, shard_sizes, tiny_spill(dir, 1));
  ASSERT_TRUE(store.spilled());
  EXPECT_GE(store.segments().segment_count(), 2u);
  expect_decodes_to(store, input);
  fs::remove_all(dir);
}

TEST(SegmentStore, BelowThresholdStaysResident) {
  util::Rng rng(444);
  const auto input = canonical_batch(rng, 20, 10);
  const fs::path dir = scratch_dir("resident");
  SpillConfig config;
  config.directory = dir.string();  // defaults: 64 MiB segments, 512 MiB RAM
  const RecordStore store = spill(input, {50, 50, 50}, config);
  EXPECT_FALSE(store.spilled());
  expect_decodes_to(store, input);
  // No segment files were left behind.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    files += entry.path().extension() == ".dmseg" ? 1 : 0;
  }
  EXPECT_EQ(files, 0u);
  fs::remove_all(dir);
}

TEST(SegmentStore, AdversarialRemoteSwingsAcrossSegments) {
  // Max-delta remote swings (0 -> 2^32-1 -> 0) inside one run, with the run
  // split across shards so the absolute-at-run-start re-encode happens at a
  // segment boundary too.
  constexpr std::uint32_t kIpMax = 0xffffffffu;
  std::vector<Oriented> input;
  for (int i = 0; i < 150'000; ++i) {
    const std::uint32_t remote = (i % 2) == 0 ? 0 : kIpMax;
    input.push_back({make_record(7, remote, 42, 1, 1, Protocol::kTcp,
                                 TcpFlags::kAck,
                                 static_cast<std::uint32_t>(i + 1),
                                 std::numeric_limits<std::uint64_t>::max()),
                     Direction::kInbound});
  }
  const fs::path dir = scratch_dir("swings");
  // Prime-ish shard sizes keep the run's segment split points irregular.
  const RecordStore store =
      spill(input, std::vector<std::size_t>(40, 3571), tiny_spill(dir, 1));
  ASSERT_TRUE(store.spilled());
  EXPECT_GE(store.segments().segment_count(), 2u);
  expect_decodes_to(store, input);
  fs::remove_all(dir);
}

TEST(SegmentStore, RangesStraddleSegmentBoundaries) {
  util::Rng rng(555);
  const auto input = canonical_batch(rng, 3000, 100);
  const fs::path dir = scratch_dir("ranges");
  const RecordStore store =
      spill(input, std::vector<std::size_t>(10, 30'000), tiny_spill(dir, 1));
  ASSERT_TRUE(store.spilled());
  ASSERT_GE(store.segments().segment_count(), 2u);
  const std::size_t n = input.size();

  for (int round = 0; round < 120; ++round) {
    const std::size_t first = rng.below(n + 1);
    const std::size_t last = first + rng.below(n + 1 - first);
    SCOPED_TRACE("range [" + std::to_string(first) + ", " +
                 std::to_string(last) + ")");
    const auto range = store.range(first, last);
    ASSERT_EQ(range.size(), last - first);
    std::size_t i = first;
    for (auto it = range.begin(); it != range.end(); ++it, ++i) {
      ASSERT_LT(i, last);
      ASSERT_EQ(it.index(), i);
      ASSERT_EQ(*it, input[i].record) << "record " << i;
      ASSERT_EQ(it.direction(), input[i].direction);
    }
    ASSERT_EQ(i, last);
  }

  for (int round = 0; round < 120; ++round) {
    const std::size_t i = rng.below(n);
    EXPECT_EQ(store.direction_of(i), input[i].direction) << "direction " << i;
  }

  // segment_containing agrees with the segment table.
  const auto& segs = store.segments().segments();
  for (std::size_t s = 0; s < segs.size(); ++s) {
    EXPECT_EQ(store.segments().segment_containing(segs[s].first_record), s);
    EXPECT_EQ(store.segments().segment_containing(segs[s].first_record +
                                                  segs[s].records - 1),
              s);
  }
  fs::remove_all(dir);
}

TEST(SegmentStore, OpenRereadsWhatSpillWriterSealed) {
  util::Rng rng(666);
  const auto input = canonical_batch(rng, 2500, 100);
  const fs::path dir = scratch_dir("reopen");
  const RecordStore written =
      spill(input, std::vector<std::size_t>(10, 25'000), tiny_spill(dir, 1));
  ASSERT_TRUE(written.spilled());

  const RecordStore reopened(SegmentStore::open(dir.string()));
  EXPECT_EQ(reopened.size(), written.size());
  EXPECT_EQ(reopened.segments().segment_count(),
            written.segments().segment_count());
  expect_decodes_to(reopened, input);
  fs::remove_all(dir);
}

TEST(SegmentStore, SpillWriterRestartsCleanOverStaleSegments) {
  util::Rng rng(777);
  const auto first_run = canonical_batch(rng, 3000, 100);
  const auto second_run = canonical_batch(rng, 1500, 100);
  const fs::path dir = scratch_dir("restart");

  const RecordStore first =
      spill(first_run, std::vector<std::size_t>(10, 30'000),
            tiny_spill(dir, 1));
  ASSERT_TRUE(first.spilled());
  // A second writer over the same directory must not absorb stale files.
  const RecordStore second =
      spill(second_run, std::vector<std::size_t>(10, 15'000),
            tiny_spill(dir, 1));
  ASSERT_TRUE(second.spilled());
  expect_decodes_to(second, second_run);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dm::netflow
