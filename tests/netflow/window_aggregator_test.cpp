#include "netflow/window_aggregator.h"

#include <gtest/gtest.h>

namespace dm::netflow {
namespace {

const IPv4 kVip = IPv4::from_octets(100, 64, 0, 5);
const IPv4 kVip2 = IPv4::from_octets(100, 64, 0, 9);
const IPv4 kRemoteA = IPv4::from_octets(4, 1, 1, 1);
const IPv4 kRemoteB = IPv4::from_octets(4, 2, 2, 2);

PrefixSet cloud_space() {
  PrefixSet set;
  set.add(Prefix(IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

FlowRecord flow(util::Minute minute, IPv4 src, IPv4 dst, std::uint16_t sport,
                std::uint16_t dport, Protocol proto = Protocol::kTcp,
                TcpFlags flags = TcpFlags::kAck | TcpFlags::kPsh,
                std::uint32_t packets = 1) {
  FlowRecord r;
  r.minute = minute;
  r.src_ip = src;
  r.dst_ip = dst;
  r.src_port = sport;
  r.dst_port = dport;
  r.protocol = proto;
  r.tcp_flags = flags;
  r.packets = packets;
  r.bytes = packets * 100;
  return r;
}

TEST(Classify, Directions) {
  const auto space = cloud_space();
  EXPECT_EQ(classify(flow(0, kRemoteA, kVip, 1000, 80), space),
            Direction::kInbound);
  EXPECT_EQ(classify(flow(0, kVip, kRemoteA, 80, 1000), space),
            Direction::kOutbound);
  // Remote-to-remote and cloud-to-cloud are out of scope.
  EXPECT_FALSE(classify(flow(0, kRemoteA, kRemoteB, 1, 2), space).has_value());
  EXPECT_FALSE(classify(flow(0, kVip, kVip2, 1, 2), space).has_value());
}

TEST(Aggregate, GroupsByVipMinuteDirection) {
  std::vector<FlowRecord> records{
      flow(5, kRemoteA, kVip, 1111, 80),
      flow(5, kRemoteB, kVip, 2222, 80),
      flow(6, kRemoteA, kVip, 3333, 80),
      flow(5, kVip, kRemoteA, 80, 1111),
      flow(5, kRemoteA, kVip2, 1111, 443),
  };
  const auto trace = aggregate_windows(std::move(records), cloud_space());
  ASSERT_EQ(trace.windows().size(), 4u);
  EXPECT_EQ(trace.unclassified_records(), 0u);

  const auto in5 = trace.series(kVip, Direction::kInbound);
  ASSERT_EQ(in5.size(), 2u);
  EXPECT_EQ(in5[0].minute, 5);
  EXPECT_EQ(in5[0].flows, 2u);
  EXPECT_EQ(in5[0].unique_remote_ips, 2u);
  EXPECT_EQ(in5[1].minute, 6);
  EXPECT_EQ(in5[1].flows, 1u);

  const auto out = trace.series(kVip, Direction::kOutbound);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].packets, 1u);
}

TEST(Aggregate, DropsUnclassified) {
  std::vector<FlowRecord> records{
      flow(1, kRemoteA, kRemoteB, 1, 2),
      flow(1, kRemoteA, kVip, 1, 80),
  };
  const auto trace = aggregate_windows(std::move(records), cloud_space());
  EXPECT_EQ(trace.unclassified_records(), 1u);
  EXPECT_EQ(trace.records().size(), 1u);
}

TEST(Aggregate, ProtocolAndFlagCounters) {
  std::vector<FlowRecord> records{
      flow(1, kRemoteA, kVip, 1, 80, Protocol::kTcp, TcpFlags::kSyn, 7),
      flow(1, kRemoteA, kVip, 2, 80, Protocol::kTcp, TcpFlags::kNone, 3),
      flow(1, kRemoteA, kVip, 3, 80, Protocol::kTcp, kXmasFlags, 2),
      flow(1, kRemoteA, kVip, 4, 80, Protocol::kTcp, TcpFlags::kRst, 5),
      flow(1, kRemoteA, kVip, 5, 80, Protocol::kUdp, TcpFlags::kNone, 11),
      flow(1, kRemoteA, kVip, 6, 80, Protocol::kIcmp, TcpFlags::kNone, 13),
      flow(1, kRemoteA, kVip, 0, 0, Protocol::kIpEncap, TcpFlags::kNone, 1),
  };
  const auto trace = aggregate_windows(std::move(records), cloud_space());
  ASSERT_EQ(trace.windows().size(), 1u);
  const auto& w = trace.windows()[0];
  EXPECT_EQ(w.packets, 42u);
  EXPECT_EQ(w.tcp_packets, 17u);
  EXPECT_EQ(w.syn_packets, 7u);
  EXPECT_EQ(w.null_scan_packets, 3u);
  EXPECT_EQ(w.xmas_scan_packets, 2u);
  EXPECT_EQ(w.bare_rst_packets, 5u);
  EXPECT_EQ(w.udp_packets, 11u);
  EXPECT_EQ(w.icmp_packets, 13u);
  EXPECT_EQ(w.ipencap_packets, 1u);
}

TEST(Aggregate, DnsResponseDetection) {
  std::vector<FlowRecord> records{
      // Inbound response from a resolver: src port 53.
      flow(1, kRemoteA, kVip, 53, 9999, Protocol::kUdp, TcpFlags::kNone, 4),
      // Inbound query to the VIP's DNS service: dst port 53 — not a response.
      flow(1, kRemoteB, kVip, 1234, 53, Protocol::kUdp, TcpFlags::kNone, 2),
  };
  const auto trace = aggregate_windows(std::move(records), cloud_space());
  const auto& w = trace.windows()[0];
  EXPECT_EQ(w.dns_response_packets, 4u);
  EXPECT_EQ(w.udp_packets, 6u);
}

TEST(Aggregate, ApplicationPortFeatures) {
  std::vector<FlowRecord> records{
      // Two distinct remotes brute-forcing SSH.
      flow(1, kRemoteA, kVip, 1111, 22, Protocol::kTcp,
           TcpFlags::kSyn | TcpFlags::kAck, 3),
      flow(1, kRemoteB, kVip, 2222, 22, Protocol::kTcp,
           TcpFlags::kSyn | TcpFlags::kAck, 3),
      flow(1, kRemoteB, kVip, 2223, 3389, Protocol::kTcp,
           TcpFlags::kSyn | TcpFlags::kAck, 1),
      // SQL connections.
      flow(1, kRemoteA, kVip, 3333, 1433, Protocol::kTcp,
           TcpFlags::kAck | TcpFlags::kPsh, 2),
      // Outbound spam: VIP -> remote SMTP server (dst port 25).
      flow(1, kVip, kRemoteA, 4444, 25, Protocol::kTcp,
           TcpFlags::kSyn | TcpFlags::kAck | TcpFlags::kPsh, 5),
  };
  const auto trace = aggregate_windows(std::move(records), cloud_space());

  const auto in = trace.series(kVip, Direction::kInbound);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0].remote_admin_flows, 3u);
  EXPECT_EQ(in[0].unique_admin_remotes, 2u);
  EXPECT_EQ(in[0].admin_packets, 7u);
  EXPECT_EQ(in[0].sql_flows, 1u);
  EXPECT_EQ(in[0].sql_packets, 2u);
  EXPECT_EQ(in[0].smtp_flows, 0u);

  const auto out = trace.series(kVip, Direction::kOutbound);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].smtp_flows, 1u);
  EXPECT_EQ(out[0].unique_smtp_remotes, 1u);
  EXPECT_EQ(out[0].smtp_packets, 5u);
}

TEST(Aggregate, BlacklistFeatures) {
  PrefixSet blacklist;
  blacklist.add(Prefix(kRemoteB, 32));
  std::vector<FlowRecord> records{
      flow(1, kRemoteA, kVip, 1, 80),
      flow(1, kRemoteB, kVip, 2, 80, Protocol::kTcp,
           TcpFlags::kAck | TcpFlags::kPsh, 9),
      flow(1, kRemoteB, kVip, 3, 80, Protocol::kTcp,
           TcpFlags::kAck | TcpFlags::kPsh, 1),
  };
  const auto trace =
      aggregate_windows(std::move(records), cloud_space(), &blacklist);
  const auto& w = trace.windows()[0];
  EXPECT_EQ(w.blacklist_flows, 2u);
  EXPECT_EQ(w.unique_blacklist_remotes, 1u);
  EXPECT_EQ(w.blacklist_packets, 10u);
}

TEST(Aggregate, RecordsOfWindowSpansMatch) {
  std::vector<FlowRecord> records;
  for (int m = 0; m < 3; ++m) {
    for (int f = 0; f < 4; ++f) {
      records.push_back(flow(m, IPv4(kRemoteA.value() + static_cast<std::uint32_t>(f)),
                             kVip, static_cast<std::uint16_t>(1000 + f), 80));
    }
  }
  const auto trace = aggregate_windows(std::move(records), cloud_space());
  std::size_t total = 0;
  for (const auto& w : trace.windows()) {
    const auto span = trace.records_of(w);
    EXPECT_EQ(span.size(), 4u);
    for (const auto& r : span) EXPECT_EQ(r.minute, w.minute);
    total += span.size();
  }
  EXPECT_EQ(total, trace.records().size());
}

TEST(Aggregate, VipsAreSortedDistinct) {
  std::vector<FlowRecord> records{
      flow(1, kRemoteA, kVip2, 1, 80),
      flow(1, kRemoteA, kVip, 1, 80),
      flow(2, kVip, kRemoteA, 80, 1),
  };
  const auto trace = aggregate_windows(std::move(records), cloud_space());
  const auto vips = trace.vips();
  ASSERT_EQ(vips.size(), 2u);
  EXPECT_EQ(vips[0], kVip);
  EXPECT_EQ(vips[1], kVip2);
}

TEST(Aggregate, EmptyInput) {
  const auto trace = aggregate_windows({}, cloud_space());
  EXPECT_TRUE(trace.windows().empty());
  EXPECT_TRUE(trace.records().empty());
  EXPECT_TRUE(trace.vips().empty());
  EXPECT_TRUE(trace.series(kVip, Direction::kInbound).empty());
}

}  // namespace
}  // namespace dm::netflow
