#include "netflow/sampler.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace dm::netflow {
namespace {

TEST(PacketSampler, RejectsZeroRate) {
  EXPECT_THROW(PacketSampler(0), dm::ConfigError);
}

TEST(PacketSampler, RateOneKeepsEverything) {
  const PacketSampler sampler(1);
  util::Rng rng(1);
  EXPECT_EQ(sampler.sample_packets(12345, rng), 12345u);
  const auto flow = sampler.sample_flow(100, 5000, rng);
  ASSERT_TRUE(flow.has_value());
  EXPECT_EQ(flow->packets, 100u);
  EXPECT_EQ(flow->bytes, 5000u);
}

TEST(PacketSampler, ThinningIsUnbiased) {
  const PacketSampler sampler(4096);
  util::Rng rng(2);
  constexpr std::uint64_t kTruePackets = 4096 * 10;
  double total = 0.0;
  constexpr int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    total += static_cast<double>(sampler.sample_packets(kTruePackets, rng));
  }
  EXPECT_NEAR(total / kTrials, 10.0, 0.3);
}

TEST(PacketSampler, SmallFlowsOftenVanish) {
  const PacketSampler sampler(4096);
  util::Rng rng(3);
  int vanished = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    if (!sampler.sample_flow(100, 40'000, rng)) ++vanished;
  }
  // P(no packet sampled) = (1 - 1/4096)^100 ~ 97.6%.
  EXPECT_GT(vanished, kTrials * 9 / 10);
}

TEST(PacketSampler, BytesScaleWithKeptPackets) {
  const PacketSampler sampler(2);
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto flow = sampler.sample_flow(1000, 100'000, rng);
    if (!flow) continue;
    const double per_packet =
        static_cast<double>(flow->bytes) / static_cast<double>(flow->packets);
    EXPECT_NEAR(per_packet, 100.0, 1.0);
  }
}

TEST(PacketSampler, EstimateInvertsSampling) {
  const PacketSampler sampler(4096);
  EXPECT_DOUBLE_EQ(sampler.estimate_true(100.0), 409'600.0);
  EXPECT_DOUBLE_EQ(sampler.probability(), 1.0 / 4096.0);
}

TEST(PacketSampler, ZeroPacketsStayZero) {
  const PacketSampler sampler(4096);
  util::Rng rng(5);
  EXPECT_EQ(sampler.sample_packets(0, rng), 0u);
  EXPECT_FALSE(sampler.sample_flow(0, 0, rng).has_value());
}

// Property: sampled count never exceeds the true count.
class SamplerBounds : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SamplerBounds, NeverOversamples) {
  const PacketSampler sampler(GetParam());
  util::Rng rng(6);
  for (std::uint64_t n : {1ull, 10ull, 4096ull, 1'000'000ull}) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_LE(sampler.sample_packets(n, rng), n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplerBounds,
                         ::testing::Values(1, 2, 1024, 4096, 16384));

}  // namespace
}  // namespace dm::netflow
