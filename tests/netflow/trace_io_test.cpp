#include "netflow/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "util/error.h"
#include "util/rng.h"

namespace dm::netflow {
namespace {

std::vector<FlowRecord> sample_records(std::size_t n, std::uint64_t seed = 9) {
  util::Rng rng(seed);
  std::vector<FlowRecord> records(n);
  util::Minute minute = 100;
  for (auto& r : records) {
    if (rng.chance(0.1)) minute += static_cast<util::Minute>(rng.below(5));
    r.minute = minute;
    r.src_ip = IPv4(static_cast<std::uint32_t>(rng()));
    r.dst_ip = IPv4(static_cast<std::uint32_t>(rng()));
    r.src_port = static_cast<std::uint16_t>(rng.below(65536));
    r.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    r.protocol = rng.chance(0.5) ? Protocol::kTcp : Protocol::kUdp;
    r.tcp_flags = static_cast<TcpFlags>(rng.below(64));
    r.packets = static_cast<std::uint32_t>(1 + rng.below(1000));
    r.bytes = r.packets * (40 + rng.below(1460));
  }
  return records;
}

TEST(TraceIo, RoundTripInMemory) {
  const auto records = sample_records(10'000);
  std::stringstream buffer;
  {
    TraceWriter writer(buffer, 4096);
    writer.write_all(records);
    writer.finish();
    EXPECT_EQ(writer.records_written(), records.size());
  }
  TraceReader reader(buffer);
  EXPECT_EQ(reader.sampling_denominator(), 4096u);
  const auto loaded = reader.read_all();
  ASSERT_EQ(loaded.size(), records.size());
  EXPECT_EQ(loaded, records);
}

TEST(TraceIo, EmptyTrace) {
  std::stringstream buffer;
  {
    TraceWriter writer(buffer, 1024);
    writer.finish();
  }
  TraceReader reader(buffer);
  EXPECT_EQ(reader.sampling_denominator(), 1024u);
  EXPECT_TRUE(reader.read_all().empty());
}

TEST(TraceIo, SingleRecord) {
  FlowRecord r;
  r.minute = -5;  // negative minutes must survive zigzag
  r.src_ip = IPv4::from_octets(1, 2, 3, 4);
  r.dst_ip = IPv4::from_octets(100, 64, 0, 1);
  r.packets = 1;
  std::stringstream buffer;
  {
    TraceWriter writer(buffer, 4096);
    writer.write(r);
    writer.finish();
  }
  TraceReader reader(buffer);
  FlowRecord loaded;
  ASSERT_TRUE(reader.next(loaded));
  EXPECT_EQ(loaded, r);
  EXPECT_FALSE(reader.next(loaded));
}

TEST(TraceIo, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "NOTATRACE";
  EXPECT_THROW(TraceReader reader(buffer), dm::FormatError);
}

TEST(TraceIo, TruncationDetected) {
  const auto records = sample_records(5000);
  std::stringstream buffer;
  {
    TraceWriter writer(buffer, 4096);
    writer.write_all(records);
    writer.finish();
  }
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() * 2 / 3));
  TraceReader reader(truncated);
  EXPECT_THROW(
      {
        FlowRecord r;
        while (reader.next(r)) {
        }
      },
      dm::FormatError);
}

TEST(TraceIo, CorruptionDetectedByCrc) {
  const auto records = sample_records(5000);
  std::stringstream buffer;
  {
    TraceWriter writer(buffer, 4096);
    writer.write_all(records);
    writer.finish();
  }
  std::string data = buffer.str();
  data[data.size() / 2] ^= 0x40;  // flip a bit mid-payload
  std::stringstream corrupted(data);
  TraceReader reader(corrupted);
  EXPECT_THROW(
      {
        FlowRecord r;
        while (reader.next(r)) {
        }
      },
      dm::FormatError);
}

TEST(TraceIo, FileRoundTrip) {
  const auto records = sample_records(2000);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dm_trace_test.dmnf").string();
  write_trace_file(path, records, 4096);
  std::uint32_t sampling = 0;
  const auto loaded = read_trace_file(path, &sampling);
  EXPECT_EQ(sampling, 4096u);
  EXPECT_EQ(loaded, records);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/dir/trace.dmnf"), dm::FormatError);
}

TEST(Crc32, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

// Property: round trip across block boundaries (block size is 4096 records).
class TraceIoSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TraceIoSizes, RoundTripsExactly) {
  const auto records = sample_records(GetParam(), GetParam() + 1);
  std::stringstream buffer;
  {
    TraceWriter writer(buffer, 4096);
    writer.write_all(records);
    writer.finish();
  }
  TraceReader reader(buffer);
  EXPECT_EQ(reader.read_all(), records);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TraceIoSizes,
                         ::testing::Values(1, 2, 4095, 4096, 4097, 8192, 9000));

}  // namespace
}  // namespace dm::netflow
