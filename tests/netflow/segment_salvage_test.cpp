// Crash-recovery acceptance for the spill tier: segment files damaged
// mid-set (deterministic fault::FaultInjector bit flips, tail truncation,
// header corruption) must produce an EXACT per-file damage ledger from
// SegmentStore::salvage — every undamaged segment recovered, every damaged
// one classified by failure mode — and a StreamMonitor restored from a
// checkpoint taken at a segment boundary must resume over the salvaged
// segments without drift (byte-identical monitor state and incidents).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "detect/stream.h"
#include "fault/fault.h"
#include "netflow/segment_store.h"
#include "util/rng.h"

namespace dm::netflow {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kVipBase = 0x64400000;  // 100.64.0.0 — in-cloud

PrefixSet cloud_space() {
  PrefixSet set;
  set.add(Prefix(IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

struct Oriented {
  FlowRecord record;
  Direction direction = Direction::kInbound;
};

/// Pipeline-shaped batch over in-cloud VIPs, so a StreamMonitor fed the
/// decoded records classifies every one of them.
std::vector<Oriented> cloud_batch(util::Rng& rng, std::size_t groups,
                                  std::size_t per_group) {
  std::vector<Oriented> out;
  std::uint32_t vip = kVipBase;
  for (std::size_t g = 0; g < groups; ++g) {
    vip = kVipBase + static_cast<std::uint32_t>(rng.below(64));
    const auto direction =
        rng.chance(0.5) ? Direction::kInbound : Direction::kOutbound;
    const auto minute = static_cast<util::Minute>(g / 4);
    std::uint32_t remote = 0x55000000 + static_cast<std::uint32_t>(g);
    for (std::size_t i = 0; i < per_group; ++i) {
      remote += static_cast<std::uint32_t>(rng.below(1000));
      Oriented o;
      o.direction = direction;
      FlowRecord& r = o.record;
      r.minute = minute;
      r.src_ip = IPv4(direction == Direction::kInbound ? remote : vip);
      r.dst_ip = IPv4(direction == Direction::kInbound ? vip : remote);
      r.src_port = static_cast<std::uint16_t>(1024 + rng.below(100));
      r.dst_port = 80;
      r.protocol = Protocol::kTcp;
      r.tcp_flags = rng.chance(0.3) ? TcpFlags::kSyn : TcpFlags::kAck;
      r.packets = static_cast<std::uint32_t>(1 + rng.below(20));
      r.bytes = 40 * r.packets;
      out.push_back(o);
    }
  }
  return out;
}

fs::path scratch_dir(const std::string& suffix) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("dm_salvage_" + std::to_string(::getpid()) + "_" + suffix);
  fs::remove_all(dir);
  return dir;
}

/// Spills `input` into several ~1 MiB segments under `dir`.
RecordStore spill_segments(const std::vector<Oriented>& input,
                           const fs::path& dir) {
  SpillConfig config;
  config.directory = dir.string();
  config.segment_bytes = 1;       // floors at 1 MiB
  config.ram_budget_bytes = 2;    // floors at 1 MiB
  SpillWriter writer(config);
  constexpr std::size_t kShard = 10'000;
  for (std::size_t i = 0; i < input.size(); i += kShard) {
    ColumnarRecords shard;
    const std::size_t end = std::min(input.size(), i + kShard);
    for (std::size_t k = i; k < end; ++k) {
      shard.push_back(input[k].record, input[k].direction);
    }
    writer.append(std::move(shard));
  }
  return std::move(writer).finish();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Applies `plan` to segment file `index` of `store` on disk; returns the
/// injector's ground-truth damage.
fault::SegmentDamage damage_segment(const RecordStore& store,
                                    std::size_t index,
                                    const fault::SegmentPlan& plan,
                                    std::uint64_t seed) {
  const std::string& path = store.segments().segments()[index].path;
  auto bytes = read_file(path);
  const fault::SegmentDamage damage =
      fault::FaultInjector(seed).corrupt_segment(bytes, plan, index);
  write_file(path, bytes);
  return damage;
}

TEST(SegmentSalvage, LedgerDescribesExactlyTheInjectedDamage) {
  util::Rng rng(901);
  const auto input = cloud_batch(rng, 7000, 100);
  const fs::path dir = scratch_dir("ledger");
  const RecordStore store = spill_segments(input, dir);
  ASSERT_TRUE(store.spilled());
  const auto segments = store.segments().segments();  // pre-damage copy
  const std::size_t n_segs = segments.size();
  ASSERT_GE(n_segs, 5u);

  // Damage three interior segments, one per failure mode. A single flipped
  // body bit must abandon the segment (CRC-detectable), a truncated file
  // must report the header's record count, and a header flip must leave
  // the file unreadable (record count unknowable).
  fault::SegmentPlan flip_plan;
  flip_plan.bit_flips = 1;
  const auto flip_damage = damage_segment(store, 1, flip_plan, 77);
  ASSERT_EQ(flip_damage.flipped_offsets.size(), 1u);
  ASSERT_GE(flip_damage.flipped_offsets[0], 56u);

  fault::SegmentPlan trunc_plan;
  trunc_plan.truncate_tail = true;
  const auto trunc_damage = damage_segment(store, 2, trunc_plan, 77);
  ASSERT_GT(trunc_damage.bytes_removed, 0u);

  fault::SegmentPlan header_plan;
  header_plan.corrupt_header = true;
  const auto header_damage = damage_segment(store, 3, header_plan, 77);
  ASSERT_TRUE(header_damage.header_corrupted);

  auto [salvaged, report] = SegmentStore::salvage(dir.string());

  // Exact ledger: one entry per file in order, statuses matching the
  // injected failure modes, record counts from the (intact) headers.
  ASSERT_EQ(report.entries.size(), n_segs);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.segments_damaged, 3u);
  EXPECT_EQ(report.segments_recovered, n_segs - 3);
  for (std::size_t i = 0; i < n_segs; ++i) {
    const auto& entry = report.entries[i];
    SCOPED_TRACE("segment " + std::to_string(i));
    EXPECT_EQ(entry.path, segments[i].path);
    switch (i) {
      case 1:
        EXPECT_EQ(entry.status, SegmentFileStatus::kBodyCorrupt);
        EXPECT_EQ(entry.records, segments[i].records);
        break;
      case 2:
        EXPECT_EQ(entry.status, SegmentFileStatus::kTruncated);
        EXPECT_EQ(entry.records, segments[i].records);
        EXPECT_EQ(entry.file_bytes,
                  segments[i].file_bytes - trunc_damage.bytes_removed);
        break;
      case 3:
        EXPECT_EQ(entry.status, SegmentFileStatus::kBadHeader);
        EXPECT_EQ(entry.records, 0u);  // header unreadable
        break;
      default:
        EXPECT_EQ(entry.status, SegmentFileStatus::kOk);
        EXPECT_EQ(entry.records, segments[i].records);
        EXPECT_EQ(entry.file_bytes, segments[i].file_bytes);
        break;
    }
  }
  std::uint64_t expect_recovered = 0;
  for (std::size_t i = 0; i < n_segs; ++i) {
    if (i != 1 && i != 2 && i != 3) expect_recovered += segments[i].records;
  }
  EXPECT_EQ(report.records_recovered, expect_recovered);
  // The header-corrupt segment's loss is unknowable from disk; the ledger
  // counts only losses it can prove from readable headers.
  EXPECT_EQ(report.records_lost, segments[1].records + segments[2].records);

  // Every record of every undamaged segment decodes back, in order, and
  // matches the original input slice — a damaged segment never poisons its
  // successors.
  const RecordStore survivors{std::move(salvaged)};
  ASSERT_EQ(survivors.size(), expect_recovered);
  auto it = survivors.all().begin();
  const auto end = survivors.all().end();
  for (std::size_t i = 0; i < n_segs; ++i) {
    if (i == 1 || i == 2 || i == 3) continue;
    const std::size_t first = segments[i].first_record;
    for (std::size_t k = 0; k < segments[i].records; ++k) {
      ASSERT_FALSE(it == end);
      ASSERT_EQ(*it, input[first + k].record)
          << "segment " << i << " record " << k;
      ++it;
    }
  }
  EXPECT_TRUE(it == end);
  fs::remove_all(dir);
}

TEST(SegmentSalvage, CleanSetSalvagesClean) {
  util::Rng rng(902);
  const auto input = cloud_batch(rng, 2000, 100);
  const fs::path dir = scratch_dir("clean");
  const RecordStore store = spill_segments(input, dir);
  ASSERT_TRUE(store.spilled());

  const auto [salvaged, report] = SegmentStore::salvage(dir.string());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.segments_damaged, 0u);
  EXPECT_EQ(report.segments_recovered, store.segments().segment_count());
  EXPECT_EQ(report.records_recovered, store.size());
  EXPECT_EQ(report.records_lost, 0u);
  EXPECT_EQ(salvaged.size(), store.size());
  fs::remove_all(dir);
}

// ---- Resume-without-drift: a monitor checkpointed at a segment boundary,
// restored after a crash that damaged already-processed segments, must
// finish byte-identical to an uninterrupted run.

detect::StreamMonitor make_monitor(
    std::vector<detect::AttackIncident>* incidents) {
  return detect::StreamMonitor(
      cloud_space(), nullptr, detect::DetectionConfig{},
      detect::TimeoutTable::paper(), nullptr,
      [incidents](const detect::AttackIncident& inc) {
        incidents->push_back(inc);
      },
      detect::StreamConfig{});
}

std::string checkpoint_bytes(const detect::StreamMonitor& monitor) {
  std::ostringstream out;
  monitor.checkpoint(out);
  return out.str();
}

TEST(SegmentSalvage, MonitorResumesFromCheckpointWithoutDrift) {
  util::Rng rng(903);
  const auto input = cloud_batch(rng, 4000, 100);
  const fs::path dir = scratch_dir("resume");
  const RecordStore store = spill_segments(input, dir);
  ASSERT_TRUE(store.spilled());
  const auto segments = store.segments().segments();
  ASSERT_GE(segments.size(), 4u);

  // Checkpoint boundary: after the first two segments.
  const std::size_t boundary = segments[2].first_record;
  std::vector<FlowRecord> feed;
  feed.reserve(store.size());
  for (const auto& r : store.all()) feed.push_back(r);

  // Uninterrupted reference; note how many incidents had been emitted when
  // it crossed the boundary, so the post-boundary tail is comparable.
  std::vector<detect::AttackIncident> ref_incidents;
  detect::StreamMonitor reference = make_monitor(&ref_incidents);
  for (std::size_t i = 0; i < boundary; ++i) reference.ingest(feed[i]);
  const std::size_t ref_at_boundary = ref_incidents.size();
  for (std::size_t i = boundary; i < feed.size(); ++i) {
    reference.ingest(feed[i]);
  }
  const std::string ref_state = checkpoint_bytes(reference);

  // Interrupted run: ingest up to the boundary, checkpoint, "crash". The
  // crash corrupts an already-processed segment on disk.
  std::vector<detect::AttackIncident> first_incidents;
  detect::StreamMonitor before = make_monitor(&first_incidents);
  for (std::size_t i = 0; i < boundary; ++i) before.ingest(feed[i]);
  const std::string saved = checkpoint_bytes(before);
  ASSERT_EQ(first_incidents.size(), ref_at_boundary);

  fault::SegmentPlan crash_plan;
  crash_plan.bit_flips = 4;
  const auto damage = damage_segment(store, 0, crash_plan, 42);
  ASSERT_TRUE(damage.any());

  // Recovery: salvage keeps every undamaged segment; the unprocessed tail
  // (segments >= 2) survives intact at the end of the salvaged store.
  auto [salvaged, report] = SegmentStore::salvage(dir.string());
  EXPECT_EQ(report.segments_damaged, 1u);
  ASSERT_EQ(salvaged.size(), store.size() - segments[0].records);
  const RecordStore recovered{std::move(salvaged)};
  const std::size_t tail_records = store.size() - boundary;
  const std::size_t tail_start = recovered.size() - tail_records;

  std::vector<detect::AttackIncident> resumed_incidents;
  detect::StreamMonitor resumed = make_monitor(&resumed_incidents);
  std::istringstream saved_in(saved);
  resumed.restore(saved_in);
  for (const auto& r : recovered.range(tail_start, recovered.size())) {
    resumed.ingest(r);
  }

  // Byte-identical monitor state and identical post-boundary incidents.
  EXPECT_EQ(checkpoint_bytes(resumed), ref_state);
  EXPECT_EQ(resumed.records_ingested(), reference.records_ingested());
  EXPECT_EQ(resumed.windows_closed(), reference.windows_closed());

  reference.finish();
  resumed.finish();
  ASSERT_EQ(ref_incidents.size() - ref_at_boundary, resumed_incidents.size());
  for (std::size_t i = 0; i < resumed_incidents.size(); ++i) {
    const auto& a = ref_incidents[ref_at_boundary + i];
    const auto& b = resumed_incidents[i];
    EXPECT_EQ(a.vip, b.vip) << "incident " << i;
    EXPECT_EQ(a.type, b.type) << "incident " << i;
    EXPECT_EQ(a.start, b.start) << "incident " << i;
    EXPECT_EQ(a.end, b.end) << "incident " << i;
    EXPECT_EQ(a.total_sampled_packets, b.total_sampled_packets)
        << "incident " << i;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dm::netflow
