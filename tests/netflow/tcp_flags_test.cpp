#include "netflow/tcp_flags.h"

#include <gtest/gtest.h>

namespace dm::netflow {
namespace {

TEST(TcpFlags, PureSyn) {
  EXPECT_TRUE(is_pure_syn(TcpFlags::kSyn));
  EXPECT_FALSE(is_pure_syn(TcpFlags::kSyn | TcpFlags::kAck));
  EXPECT_FALSE(is_pure_syn(TcpFlags::kAck));
  EXPECT_FALSE(is_pure_syn(TcpFlags::kNone));
}

TEST(TcpFlags, NullScan) {
  EXPECT_TRUE(is_null_scan(TcpFlags::kNone));
  EXPECT_FALSE(is_null_scan(TcpFlags::kFin));
}

TEST(TcpFlags, XmasScan) {
  EXPECT_TRUE(is_xmas_scan(kXmasFlags));
  // Xmas plus ACK is ordinary (weird) traffic, not the scan signature.
  EXPECT_FALSE(is_xmas_scan(kXmasFlags | TcpFlags::kAck));
  EXPECT_FALSE(is_xmas_scan(TcpFlags::kFin | TcpFlags::kPsh));
  EXPECT_FALSE(is_xmas_scan(TcpFlags::kFin));
}

TEST(TcpFlags, IllegalCombinations) {
  EXPECT_TRUE(is_illegal(TcpFlags::kNone));
  EXPECT_TRUE(is_illegal(kXmasFlags));
  EXPECT_TRUE(is_illegal(TcpFlags::kSyn | TcpFlags::kFin));
  // A completed connection's cumulative OR includes SYN|FIN|ACK|PSH — legal.
  EXPECT_FALSE(is_illegal(TcpFlags::kSyn | TcpFlags::kFin | TcpFlags::kAck |
                          TcpFlags::kPsh));
  EXPECT_FALSE(is_illegal(TcpFlags::kSyn));
  EXPECT_FALSE(is_illegal(TcpFlags::kAck | TcpFlags::kPsh));
}

TEST(TcpFlags, BareRst) {
  EXPECT_TRUE(is_bare_rst(TcpFlags::kRst));
  EXPECT_FALSE(is_bare_rst(TcpFlags::kRst | TcpFlags::kAck));
  EXPECT_FALSE(is_bare_rst(TcpFlags::kRst | TcpFlags::kSyn));
  EXPECT_FALSE(is_bare_rst(TcpFlags::kAck));
}

TEST(TcpFlags, ToString) {
  EXPECT_EQ(to_string(TcpFlags::kNone), "none");
  EXPECT_EQ(to_string(TcpFlags::kSyn), "SYN");
  EXPECT_EQ(to_string(TcpFlags::kSyn | TcpFlags::kAck), "SYN|ACK");
  EXPECT_EQ(to_string(kXmasFlags), "FIN|PSH|URG");
}

TEST(TcpFlags, OperatorsCompose) {
  const TcpFlags f = TcpFlags::kSyn | TcpFlags::kAck;
  EXPECT_TRUE(has_flag(f, TcpFlags::kSyn));
  EXPECT_TRUE(has_flag(f, TcpFlags::kAck));
  EXPECT_FALSE(has_flag(f, TcpFlags::kFin));
  EXPECT_EQ(f & TcpFlags::kSyn, TcpFlags::kSyn);
}

// Property sweep: every single-bit flag value classifies consistently.
class FlagSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlagSweep, ClassifiersAreMutuallyConsistent) {
  const auto flags = static_cast<TcpFlags>(GetParam());
  // A flag set cannot be both a NULL scan and an Xmas scan.
  EXPECT_FALSE(is_null_scan(flags) && is_xmas_scan(flags));
  // Pure SYN is never illegal.
  if (is_pure_syn(flags) && !has_flag(flags, TcpFlags::kFin)) {
    EXPECT_FALSE(is_illegal(flags));
  }
  // NULL and Xmas scans are always illegal.
  if (is_null_scan(flags) || is_xmas_scan(flags)) {
    EXPECT_TRUE(is_illegal(flags));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSixBitValues, FlagSweep, ::testing::Range(0, 64));

}  // namespace
}  // namespace dm::netflow
