// Robustness properties: the trace reader must reject, never crash or
// silently mis-parse, arbitrarily corrupted input; the window aggregator
// must conserve counts against a naive reference on random record sets.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "netflow/trace_io.h"
#include "util/error.h"
#include "netflow/window_aggregator.h"
#include "util/rng.h"

namespace dm::netflow {
namespace {

std::vector<FlowRecord> random_records(util::Rng& rng, std::size_t n) {
  std::vector<FlowRecord> records(n);
  for (auto& r : records) {
    r.minute = static_cast<util::Minute>(rng.below(500));
    // Half the endpoints in the cloud /12, half outside.
    const std::uint32_t cloud =
        IPv4::from_octets(100, 64, 0, 0).value() + static_cast<std::uint32_t>(rng.below(1 << 20));
    const std::uint32_t remote = 0x04000000u + static_cast<std::uint32_t>(rng.below(1 << 24));
    if (rng.chance(0.5)) {
      r.src_ip = IPv4(remote);
      r.dst_ip = IPv4(rng.chance(0.9) ? cloud : remote);
    } else {
      r.src_ip = IPv4(rng.chance(0.9) ? cloud : remote);
      r.dst_ip = IPv4(remote);
    }
    r.src_port = static_cast<std::uint16_t>(rng.below(65536));
    r.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    const double proto = rng.uniform01();
    r.protocol = proto < 0.6   ? Protocol::kTcp
                 : proto < 0.8 ? Protocol::kUdp
                 : proto < 0.9 ? Protocol::kIcmp
                               : Protocol::kIpEncap;
    r.tcp_flags = static_cast<TcpFlags>(rng.below(64));
    r.packets = static_cast<std::uint32_t>(1 + rng.below(50));
    r.bytes = r.packets * (40 + rng.below(1400));
  }
  return records;
}

class CorruptionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionSweep, ReaderNeverCrashesOrMisparses) {
  util::Rng rng(GetParam());
  const auto records = random_records(rng, 3000);
  std::stringstream buffer;
  {
    TraceWriter writer(buffer, 4096);
    writer.write_all(records);
    writer.finish();
  }
  const std::string clean = buffer.str();

  for (int trial = 0; trial < 40; ++trial) {
    std::string corrupted = clean;
    // Flip 1-4 random bytes anywhere in the file.
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      corrupted[rng.below(corrupted.size())] ^=
          static_cast<char>(1 + rng.below(255));
    }
    std::stringstream in(corrupted);
    try {
      TraceReader reader(in);
      const auto loaded = reader.read_all();
      // If parsing succeeded despite the corruption, the flipped bytes must
      // have been semantically harmless — the loaded data must still be the
      // original (e.g. flips landed in a CRC-protected region that happened
      // to cancel out is impossible; equal content is the only escape).
      EXPECT_EQ(loaded, records) << "silent mis-parse";
    } catch (const dm::FormatError&) {
      // Rejected cleanly: the expected outcome.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionSweep, ::testing::Values(1, 2, 3));

class AggregationOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregationOracle, ConservesCountsAgainstNaiveReference) {
  util::Rng rng(GetParam());
  auto records = random_records(rng, 5000);
  PrefixSet cloud;
  cloud.add(Prefix(IPv4::from_octets(100, 64, 0, 0), 12));

  // Naive reference: per (vip, dir, minute) packet totals and remote sets.
  struct Ref {
    std::uint64_t packets = 0;
    std::uint64_t flows = 0;
    std::set<std::uint32_t> remotes;
  };
  std::map<std::tuple<std::uint32_t, int, util::Minute>, Ref> reference;
  std::uint64_t classified = 0;
  for (const auto& r : records) {
    const auto dir = classify(r, cloud);
    if (!dir) continue;
    ++classified;
    const OrientedFlow flow{&r, *dir};
    auto& ref = reference[{flow.vip().value(), static_cast<int>(*dir), r.minute}];
    ref.packets += r.packets;
    ref.flows += 1;
    ref.remotes.insert(flow.remote_ip().value());
  }

  const auto trace = aggregate_windows(std::move(records), cloud);
  EXPECT_EQ(trace.records().size(), classified);
  ASSERT_EQ(trace.windows().size(), reference.size());
  for (const auto& w : trace.windows()) {
    const auto it = reference.find(
        {w.vip.value(), static_cast<int>(w.direction), w.minute});
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(w.packets, it->second.packets);
    EXPECT_EQ(w.flows, it->second.flows);
    EXPECT_EQ(w.unique_remote_ips, it->second.remotes.size());
    // Protocol sub-counters partition the total.
    EXPECT_EQ(w.tcp_packets + w.udp_packets + w.icmp_packets + w.ipencap_packets,
              w.packets);
    // Flag-class counters never exceed the TCP total.
    EXPECT_LE(w.syn_packets, w.tcp_packets);
    EXPECT_LE(w.null_scan_packets + w.xmas_scan_packets, w.tcp_packets);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationOracle,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace dm::netflow
