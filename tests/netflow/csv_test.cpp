#include "netflow/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"
#include "util/rng.h"

namespace dm::netflow {
namespace {

std::vector<FlowRecord> sample_records(std::size_t n) {
  util::Rng rng(4);
  std::vector<FlowRecord> records(n);
  for (auto& r : records) {
    r.minute = static_cast<util::Minute>(rng.below(10'000));
    r.src_ip = IPv4(static_cast<std::uint32_t>(rng()));
    r.dst_ip = IPv4(static_cast<std::uint32_t>(rng()));
    r.src_port = static_cast<std::uint16_t>(rng.below(65536));
    r.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    r.protocol = rng.chance(0.5) ? Protocol::kTcp : Protocol::kUdp;
    r.tcp_flags = static_cast<TcpFlags>(rng.below(64));
    r.packets = static_cast<std::uint32_t>(1 + rng.below(1000));
    r.bytes = r.packets * 100;
  }
  return records;
}

TEST(Csv, RoundTrip) {
  const auto records = sample_records(500);
  std::stringstream buffer;
  write_csv(buffer, records);
  const auto loaded = read_csv(buffer);
  EXPECT_EQ(loaded, records);
}

TEST(Csv, ParsesKnownRow) {
  const FlowRecord r =
      parse_csv_row("1501,4.1.2.3,51000,100.64.0.9,443,6,18,12,4800", 1);
  EXPECT_EQ(r.minute, 1501);
  EXPECT_EQ(r.src_ip, IPv4::from_octets(4, 1, 2, 3));
  EXPECT_EQ(r.src_port, 51'000);
  EXPECT_EQ(r.dst_ip, IPv4::from_octets(100, 64, 0, 9));
  EXPECT_EQ(r.dst_port, 443);
  EXPECT_EQ(r.protocol, Protocol::kTcp);
  EXPECT_EQ(r.tcp_flags, TcpFlags::kSyn | TcpFlags::kAck);
  EXPECT_EQ(r.packets, 12u);
  EXPECT_EQ(r.bytes, 4'800u);
}

TEST(Csv, HeaderIsOptional) {
  std::stringstream with_header;
  with_header << kCsvHeader << "\n1,4.0.0.1,1,100.64.0.1,80,6,2,1,40\n";
  EXPECT_EQ(read_csv(with_header).size(), 1u);
  std::stringstream without;
  without << "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40\n";
  EXPECT_EQ(read_csv(without).size(), 1u);
}

TEST(Csv, SkipsBlankLinesAndCrLf) {
  std::stringstream in;
  in << "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40\r\n\n"
     << "2,4.0.0.2,1,100.64.0.1,80,17,0,3,300\n";
  const auto records = read_csv(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].protocol, Protocol::kUdp);
}

TEST(Csv, RejectsMalformedRows) {
  const char* bad[] = {
      "x,4.0.0.1,1,100.64.0.1,80,6,2,1,40",    // bad minute
      "1,4.0.0,1,100.64.0.1,80,6,2,1,40",      // bad ip
      "1,4.0.0.1,99999,100.64.0.1,80,6,2,1,40",// port overflow
      "1,4.0.0.1,1,100.64.0.1,80,7,2,1,40",    // unsupported proto
      "1,4.0.0.1,1,100.64.0.1,80,6,64,1,40",   // flags out of range
      "1,4.0.0.1,1,100.64.0.1,80,6,2,0,40",    // zero packets
      "1,4.0.0.1,1,100.64.0.1,80,6,2,1",       // missing field
      "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40,9",  // trailing field
  };
  for (const char* line : bad) {
    EXPECT_THROW((void)parse_csv_row(line, 7), dm::FormatError) << line;
  }
}

TEST(Csv, ErrorNamesLine) {
  std::stringstream in;
  in << "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40\nBROKEN\n";
  try {
    (void)read_csv(in);
    FAIL() << "expected FormatError";
  } catch (const dm::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Csv, EmptyFileYieldsNoRecords) {
  std::stringstream empty;
  EXPECT_TRUE(read_csv(empty).empty());

  CsvQuarantine quarantine;
  std::stringstream empty2;
  EXPECT_TRUE(read_csv(empty2, quarantine, 10).empty());
  EXPECT_TRUE(quarantine.clean());
  EXPECT_EQ(quarantine.lines_seen, 0u);
}

TEST(Csv, TruncatedFinalLineNamesItsLineNumber) {
  // A file chopped mid-record: the final line loses its tail fields.
  std::stringstream in;
  in << kCsvHeader << "\n"
     << "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40\n"
     << "2,4.0.0.2,1,100.64.0.1,80,6,2";  // truncated mid-row, no newline
  try {
    (void)read_csv(in);
    FAIL() << "expected FormatError";
  } catch (const dm::FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("missing field"), std::string::npos) << what;
  }
}

TEST(Csv, NonNumericFieldNamesFieldAndLine) {
  std::stringstream in;
  in << "1,4.0.0.1,1,100.64.0.1,80,6,2,twelve,480\n";
  try {
    (void)read_csv(in);
    FAIL() << "expected FormatError";
  } catch (const dm::FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("bad packets"), std::string::npos) << what;
    EXPECT_NE(what.find("'twelve'"), std::string::npos) << what;
  }
}

TEST(Csv, EmbeddedNulBytesAreRejectedNotTruncated) {
  // A NUL inside a field must fail that field's parse, not silently end
  // the line (the C-string trap).
  std::string data = "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40";
  data += '\0';
  data += "junk\n";
  std::stringstream in(data);
  EXPECT_THROW((void)read_csv(in), dm::FormatError);

  CsvQuarantine quarantine;
  std::stringstream in2(data);
  const auto records = read_csv(in2, quarantine, 10);
  EXPECT_TRUE(records.empty());
  ASSERT_EQ(quarantine.bad_lines.size(), 1u);
  EXPECT_EQ(quarantine.bad_lines[0].line_no, 1u);
}

TEST(Csv, QuarantineCollectsBadLinesWithNumbers) {
  std::stringstream in;
  in << kCsvHeader << "\n"                            // line 1
     << "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40\n"        // line 2: good
     << "BROKEN\n"                                    // line 3: bad
     << "2,4.0.0.2,1,100.64.0.1,80,17,0,3,300\n"      // line 4: good
     << "\n"                                          // line 5: blank, skipped
     << "3,4.0.0.3,1,100.64.0.1,80,6,2,0,40\n"        // line 6: zero packets
     << "4,4.0.0.4,1,100.64.0.1,80,6,2,2,80\n";       // line 7: good
  CsvQuarantine quarantine;
  const auto records = read_csv(in, quarantine, 5);
  EXPECT_EQ(records.size(), 3u);
  EXPECT_EQ(quarantine.lines_seen, 5u);
  ASSERT_EQ(quarantine.bad_lines.size(), 2u);
  EXPECT_EQ(quarantine.bad_lines[0].line_no, 3u);
  EXPECT_EQ(quarantine.bad_lines[0].line, "BROKEN");
  EXPECT_NE(quarantine.bad_lines[0].error.find("line 3"), std::string::npos);
  EXPECT_EQ(quarantine.bad_lines[1].line_no, 6u);
  EXPECT_NE(quarantine.bad_lines[1].error.find("packets"), std::string::npos);
}

TEST(Csv, QuarantineBudgetExhaustionThrows) {
  std::stringstream in;
  in << "BROKEN1\nBROKEN2\nBROKEN3\n";
  CsvQuarantine quarantine;
  try {
    (void)read_csv(in, quarantine, 2);
    FAIL() << "expected FormatError past the budget";
  } catch (const dm::FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("quarantine budget of 2"), std::string::npos) << what;
  }
  // The first two bad lines were still collected before the abort.
  EXPECT_EQ(quarantine.bad_lines.size(), 2u);
}

TEST(Csv, QuarantineTruncatesOversizedLines) {
  std::stringstream in;
  in << std::string(1000, 'x') << "\n";
  CsvQuarantine quarantine;
  (void)read_csv(in, quarantine, 1);
  ASSERT_EQ(quarantine.bad_lines.size(), 1u);
  EXPECT_EQ(quarantine.bad_lines[0].line.size(),
            CsvQuarantine::kMaxQuarantinedLineBytes);
}

TEST(Csv, ZeroBudgetRestoresStrictBehavior) {
  std::stringstream in;
  in << "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40\nBROKEN\n";
  CsvQuarantine quarantine;
  EXPECT_THROW((void)read_csv(in, quarantine, 0), dm::FormatError);
  EXPECT_TRUE(quarantine.bad_lines.empty());
}

}  // namespace
}  // namespace dm::netflow
