#include "netflow/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"
#include "util/rng.h"

namespace dm::netflow {
namespace {

std::vector<FlowRecord> sample_records(std::size_t n) {
  util::Rng rng(4);
  std::vector<FlowRecord> records(n);
  for (auto& r : records) {
    r.minute = static_cast<util::Minute>(rng.below(10'000));
    r.src_ip = IPv4(static_cast<std::uint32_t>(rng()));
    r.dst_ip = IPv4(static_cast<std::uint32_t>(rng()));
    r.src_port = static_cast<std::uint16_t>(rng.below(65536));
    r.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    r.protocol = rng.chance(0.5) ? Protocol::kTcp : Protocol::kUdp;
    r.tcp_flags = static_cast<TcpFlags>(rng.below(64));
    r.packets = static_cast<std::uint32_t>(1 + rng.below(1000));
    r.bytes = r.packets * 100;
  }
  return records;
}

TEST(Csv, RoundTrip) {
  const auto records = sample_records(500);
  std::stringstream buffer;
  write_csv(buffer, records);
  const auto loaded = read_csv(buffer);
  EXPECT_EQ(loaded, records);
}

TEST(Csv, ParsesKnownRow) {
  const FlowRecord r =
      parse_csv_row("1501,4.1.2.3,51000,100.64.0.9,443,6,18,12,4800", 1);
  EXPECT_EQ(r.minute, 1501);
  EXPECT_EQ(r.src_ip, IPv4::from_octets(4, 1, 2, 3));
  EXPECT_EQ(r.src_port, 51'000);
  EXPECT_EQ(r.dst_ip, IPv4::from_octets(100, 64, 0, 9));
  EXPECT_EQ(r.dst_port, 443);
  EXPECT_EQ(r.protocol, Protocol::kTcp);
  EXPECT_EQ(r.tcp_flags, TcpFlags::kSyn | TcpFlags::kAck);
  EXPECT_EQ(r.packets, 12u);
  EXPECT_EQ(r.bytes, 4'800u);
}

TEST(Csv, HeaderIsOptional) {
  std::stringstream with_header;
  with_header << kCsvHeader << "\n1,4.0.0.1,1,100.64.0.1,80,6,2,1,40\n";
  EXPECT_EQ(read_csv(with_header).size(), 1u);
  std::stringstream without;
  without << "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40\n";
  EXPECT_EQ(read_csv(without).size(), 1u);
}

TEST(Csv, SkipsBlankLinesAndCrLf) {
  std::stringstream in;
  in << "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40\r\n\n"
     << "2,4.0.0.2,1,100.64.0.1,80,17,0,3,300\n";
  const auto records = read_csv(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].protocol, Protocol::kUdp);
}

TEST(Csv, RejectsMalformedRows) {
  const char* bad[] = {
      "x,4.0.0.1,1,100.64.0.1,80,6,2,1,40",    // bad minute
      "1,4.0.0,1,100.64.0.1,80,6,2,1,40",      // bad ip
      "1,4.0.0.1,99999,100.64.0.1,80,6,2,1,40",// port overflow
      "1,4.0.0.1,1,100.64.0.1,80,7,2,1,40",    // unsupported proto
      "1,4.0.0.1,1,100.64.0.1,80,6,64,1,40",   // flags out of range
      "1,4.0.0.1,1,100.64.0.1,80,6,2,0,40",    // zero packets
      "1,4.0.0.1,1,100.64.0.1,80,6,2,1",       // missing field
      "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40,9",  // trailing field
  };
  for (const char* line : bad) {
    EXPECT_THROW((void)parse_csv_row(line, 7), dm::FormatError) << line;
  }
}

TEST(Csv, ErrorNamesLine) {
  std::stringstream in;
  in << "1,4.0.0.1,1,100.64.0.1,80,6,2,1,40\nBROKEN\n";
  try {
    (void)read_csv(in);
    FAIL() << "expected FormatError";
  } catch (const dm::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace dm::netflow
