#include "core/report.h"

#include <gtest/gtest.h>

namespace dm::core {
namespace {

const Study& study() {
  static const Study instance{[] {
    auto config = sim::ScenarioConfig::smoke();
    config.vips.vip_count = 150;
    config.days = 2;
    config.seed = 515;
    return config;
  }()};
  return instance;
}

TEST(StudyReportTest, BuildsEveryExhibit) {
  const StudyReport report = build_report(study());
  EXPECT_GT(report.mix.total(), 0u);
  EXPECT_FALSE(report.inbound_frequency.pairs.empty());
  EXPECT_FALSE(report.outbound_frequency.pairs.empty());
  EXPECT_GT(report.inbound_as.incidents_total, 0u);
  EXPECT_GT(report.outbound_as.incidents_total, 0u);
  EXPECT_GT(report.services.victim_vips, 0u);
  EXPECT_GT(report.outbound_apps.attacking_vips, 0u);
  EXPECT_GT(report.inbound_throughput.overall.samples, 0u);
  EXPECT_FALSE(report.spoofing.verdicts.empty());
}

TEST(StudyReportTest, MixMatchesDirectLibraryCall) {
  const StudyReport report = build_report(study());
  const auto direct =
      analysis::compute_attack_mix(study().detection().incidents);
  EXPECT_EQ(report.mix.inbound_total, direct.inbound_total);
  EXPECT_EQ(report.mix.outbound_total, direct.outbound_total);
}

TEST(StudyReportTest, RenderCoversAllSections) {
  const StudyReport report = build_report(study());
  const std::string text = render_report(report, study());
  for (const char* section :
       {"attack mix", "per-VIP frequency", "correlated attacks", "throughput",
        "timing", "origins and targets", "services under attack"}) {
    EXPECT_NE(text.find(section), std::string::npos) << section;
  }
  // The header carries the study parameters.
  EXPECT_NE(text.find("sampling: 1:4096"), std::string::npos);
  EXPECT_NE(text.find("incidents:"), std::string::npos);
}

TEST(StudyReportTest, RenderIsDeterministic) {
  const StudyReport report = build_report(study());
  EXPECT_EQ(render_report(report, study()), render_report(report, study()));
}

}  // namespace
}  // namespace dm::core
