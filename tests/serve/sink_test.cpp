// Sink renderings and the FlakySink test double: every rendering must be a
// pure function of the Event, the binary framing must round-trip exactly,
// and the flaky schedule must replay from its seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "serve/sink.h"
#include "util/error.h"

namespace dm::serve {
namespace {

Event sample_event(std::uint64_t seq) {
  Event e;
  e.kind = seq % 2 == 0 ? Event::Kind::kAlert : Event::Kind::kIncident;
  e.tenant = "tenant-" + std::to_string(seq % 3);
  e.seq = seq;
  e.vip = static_cast<std::uint32_t>(0x64400001 + seq * 977);
  e.direction = static_cast<std::uint8_t>(seq % 2);
  e.type = static_cast<std::uint8_t>(seq % 9);
  e.start = static_cast<util::Minute>(100 + seq);
  e.end = static_cast<util::Minute>(105 + seq * 2);
  e.packets = 1000 + seq * 31;
  e.remotes = static_cast<std::uint32_t>(7 + seq);
  return e;
}

TEST(Sink, RenderingsAreDeterministic) {
  const Event e = sample_event(5);
  EXPECT_EQ(render_human(e), render_human(e));
  EXPECT_EQ(render_json(e), render_json(e));
  EXPECT_NE(render_human(e), render_human(sample_event(6)));
}

TEST(Sink, JsonCarriesEveryFieldWithStableKeys) {
  const std::string json = render_json(sample_event(4));
  // Must be one object with all keys present (stable order is covered by
  // the determinism test plus this fixed prefix check).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"kind\"", "\"tenant\"", "\"seq\"", "\"vip\"", "\"direction\"",
        "\"type\"", "\"start\"", "\"end\"", "\"packets\"", "\"remotes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(Sink, JsonEscapesTenantNames) {
  Event e = sample_event(0);
  e.tenant = "we\"ird\\ten\tant";
  const std::string json = render_json(e);
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(Sink, BinaryFramingRoundTrips) {
  std::vector<Event> events;
  for (std::uint64_t i = 0; i < 64; ++i) events.push_back(sample_event(i));
  Event extremes;
  extremes.tenant = "";
  extremes.seq = UINT64_MAX;
  extremes.vip = UINT32_MAX;
  extremes.start = INT64_MIN / 2;
  extremes.end = INT64_MAX / 2;
  extremes.packets = UINT64_MAX;
  extremes.remotes = UINT32_MAX;
  events.push_back(extremes);

  std::vector<std::uint8_t> bytes;
  for (const Event& e : events) encode_event(bytes, e);
  EXPECT_EQ(decode_events(bytes), events);
  EXPECT_TRUE(decode_events({}).empty());
}

TEST(Sink, DecodeRejectsMalformedBytes) {
  std::vector<std::uint8_t> bytes;
  encode_event(bytes, sample_event(1));
  bytes.pop_back();
  EXPECT_THROW((void)decode_events(bytes), dm::FormatError);
  EXPECT_THROW((void)decode_events({0xff, 0xff, 0xff}), dm::FormatError);
}

TEST(Sink, StreamSinksAppendOneRecordPerDelivery) {
  std::ostringstream human_out;
  std::ostringstream json_out;
  std::ostringstream binary_out;
  HumanSink human(human_out);
  JsonLinesSink json(json_out);
  BinarySink binary(binary_out);
  std::vector<Event> events;
  for (std::uint64_t i = 0; i < 5; ++i) {
    events.push_back(sample_event(i));
    EXPECT_TRUE(human.deliver(events.back()));
    EXPECT_TRUE(json.deliver(events.back()));
    EXPECT_TRUE(binary.deliver(events.back()));
  }
  const std::string human_text = human_out.str();
  const std::string json_text = json_out.str();
  EXPECT_EQ(std::count(human_text.begin(), human_text.end(), '\n'), 5);
  EXPECT_EQ(std::count(json_text.begin(), json_text.end(), '\n'), 5);
  const std::string blob = binary_out.str();
  EXPECT_EQ(decode_events({blob.begin(), blob.end()}), events);
}

TEST(Sink, FlakyScheduleReplaysFromSeed) {
  NullSink null;
  FlakySink a(null, 77, 0.5);
  FlakySink b(null, 77, 0.5);
  const Event e = sample_event(0);
  std::vector<bool> pattern_a;
  std::vector<bool> pattern_b;
  for (int i = 0; i < 200; ++i) {
    pattern_a.push_back(a.deliver(e));
    pattern_b.push_back(b.deliver(e));
  }
  EXPECT_EQ(pattern_a, pattern_b);
  EXPECT_EQ(a.attempts(), 200u);
  EXPECT_EQ(a.failures(), b.failures());
  EXPECT_GT(a.failures(), 0u);
  EXPECT_LT(a.failures(), 200u);

  FlakySink other(null, 78, 0.5);
  std::vector<bool> pattern_other;
  for (int i = 0; i < 200; ++i) pattern_other.push_back(other.deliver(e));
  EXPECT_NE(pattern_a, pattern_other);
}

TEST(Sink, FlakyStreakCapForcesEventualSuccess) {
  NullSink null;
  FlakySink sink(null, 1, 1.0, 3);  // always fail, capped at 3 in a row
  const Event e = sample_event(2);
  for (int round = 0; round < 4; ++round) {
    EXPECT_FALSE(sink.deliver(e));
    EXPECT_FALSE(sink.deliver(e));
    EXPECT_FALSE(sink.deliver(e));
    EXPECT_TRUE(sink.deliver(e));  // cap reached: forced through
  }
  EXPECT_EQ(sink.attempts(), 16u);
  EXPECT_EQ(sink.failures(), 12u);
}

}  // namespace
}  // namespace dm::serve
