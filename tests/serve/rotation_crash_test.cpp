// Checkpoint rotation crash matrix: kill the rotation protocol at every
// kill-point (optionally corrupting the newest committed generation as
// well), recover, replay — and require the final fleet state to be
// byte-identical to an uninterrupted run, with the damage ledger naming
// exactly what was lost. Runs at 1/2/8 serialization threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "fault/fault.h"
#include "serve/supervisor.h"
#include "sim/trace_generator.h"

// Rotation-coverage manifest — tests/lint/rotation_coverage_test.cpp keys
// on these names. The snapshot_files() byte-identity oracle serializes and
// re-verifies every checkpointed struct the serve fleet persists:
// TenantBook, BucketBook, ShardBook, and ShedLedgerEntry through the
// supervisor book, and OpenWindow, OpenIncident, SeriesState, State,
// VipMinuteStats, and AttackIncident through each shard's DMCK monitor
// checkpoint. Add a new checkpointed struct to the fleet and the tripwire
// fails until it is named (and exercised) here.
namespace dm::serve {
namespace {

namespace fs = std::filesystem;
using netflow::FlowRecord;

netflow::PrefixSet sim_cloud_space() {
  netflow::PrefixSet set;
  set.add(netflow::Prefix(netflow::IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

const std::vector<FlowRecord>& scenario_feed() {
  static const std::vector<FlowRecord> feed = [] {
    auto records =
        sim::generate_trace(sim::Scenario(sim::ScenarioConfig::smoke()))
            .records;
    std::stable_sort(records.begin(), records.end(),
                     [](const FlowRecord& a, const FlowRecord& b) {
                       return a.minute < b.minute;
                     });
    return records;
  }();
  return feed;
}

std::vector<TenantSpec> fleet_tenants() {
  std::vector<TenantSpec> tenants;
  tenants.push_back({"alpha", 2, 400, 0, 4});  // rate-budgeted: sheds
  tenants.push_back({"beta", 2, 0, 0, 8});     // unlimited
  return tenants;
}

ServeConfig fleet_config(const std::string& state_dir) {
  ServeConfig config;
  config.seed = 21;
  config.rotation_interval = 120;  // 11 in-feed rotations over the smoke day
  config.keep_generations = 2;     // GC fires from the 3rd rotation on
  config.state_dir = state_dir;
  return config;
}

std::unique_ptr<Supervisor> make_supervisor(const std::string& state_dir,
                                            exec::ThreadPool* pool) {
  return std::make_unique<Supervisor>(sim_cloud_space(), nullptr,
                                      fleet_tenants(),
                                      fleet_config(state_dir), nullptr, pool);
}

std::string snapshot_blob(const Supervisor& sup) {
  std::string blob;
  for (const ShardFile& f : sup.snapshot_files()) {
    blob += f.name;
    blob.push_back('\0');
    blob.append(f.bytes.begin(), f.bytes.end());
  }
  return blob;
}

/// Committed (non-.tmp) generation numbers under `dir`, ascending.
std::vector<std::int64_t> committed_generations(const fs::path& dir) {
  std::vector<std::int64_t> gens;
  if (!fs::exists(dir)) return gens;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("gen-", 0) == 0 && name.find(".tmp") == std::string::npos) {
      gens.push_back(std::stoll(name.substr(4)));
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

struct ReferenceRun {
  std::string blob;
  std::int64_t final_generation = -1;
  std::vector<std::int64_t> generations;
};

ReferenceRun run_reference(exec::ThreadPool* pool, const fs::path& dir) {
  fs::remove_all(dir);
  auto sup = make_supervisor(dir.string(), pool);
  for (const auto& r : scenario_feed()) sup->ingest_routed(r);
  sup->finish();
  sup->rotate_now();
  ReferenceRun ref;
  ref.blob = snapshot_blob(*sup);
  ref.final_generation = sup->last_generation();
  ref.generations = committed_generations(dir);
  EXPECT_GT(sup->book(0).shed, 0u) << "alpha's rate budget never tripped";
  EXPECT_EQ(sup->book(0).offered, sup->book(0).admitted + sup->book(0).shed);
  return ref;
}

/// One crash-matrix cell: crash at (step, occurrence), optionally corrupt
/// the newest committed generation before recovery, then recover + replay
/// and compare against `ref`. Returns false when the armed kill-point was
/// never reached (the cell is vacuous).
bool run_crash_cell(exec::ThreadPool* pool, const fs::path& dir,
                    const ReferenceRun& ref, RotationStep step,
                    std::uint64_t occurrence, bool corrupt_newest) {
  SCOPED_TRACE(std::string(rotation_step_name(step)) + " occurrence " +
               std::to_string(occurrence) +
               (corrupt_newest ? " + corrupted newest gen" : ""));
  fs::remove_all(dir);
  const auto& feed = scenario_feed();

  fault::KillSwitch kill(static_cast<std::uint64_t>(step), occurrence);
  bool crashed = false;
  {
    auto victim = make_supervisor(dir.string(), pool);
    victim->set_rotation_killswitch(&kill);
    try {
      for (const auto& r : feed) victim->ingest_routed(r);
      victim->finish();
      victim->rotate_now(&kill);
    } catch (const fault::InjectedCrash&) {
      crashed = true;
    }
  }  // the victim process "dies": all in-memory state is abandoned
  if (!crashed) {
    fs::remove_all(dir);
    return false;
  }

  // Optionally damage the newest committed generation the way a bad disk
  // would, with the injector's exact ledger as ground truth.
  std::int64_t corrupted_gen = -1;
  const char* corrupted_file = "t0-s0.dmck";
  if (corrupt_newest) {
    const auto gens = committed_generations(dir);
    if (!gens.empty()) {
      corrupted_gen = gens.back();
      const fs::path victim_file =
          dir / ("gen-" + std::to_string(corrupted_gen)) / corrupted_file;
      std::vector<std::uint8_t> bytes;
      {
        std::ifstream in(victim_file, std::ios::binary);
        EXPECT_TRUE(in.good()) << victim_file;
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
      }
      fault::CheckpointPlan plan;
      plan.bit_flips = 2;
      const fault::CheckpointDamage damage =
          fault::FaultInjector(99).corrupt_checkpoint(
              bytes, plan, static_cast<std::uint64_t>(corrupted_gen));
      EXPECT_TRUE(damage.any());
      std::ofstream out(victim_file, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
  }

  auto resumed = make_supervisor(dir.string(), pool);
  const RecoveryReport report = resumed->recover();

  // Damage ledger exactness: a pre-commit crash leaves exactly the torn
  // staging dir; the corrupted generation (when present) must be called out
  // as a CRC mismatch on the file we damaged.
  const bool pre_commit =
      static_cast<std::uint64_t>(step) <
      static_cast<std::uint64_t>(RotationStep::kCommit);
  bool saw_torn = false;
  bool saw_crc = false;
  for (const DamageEntry& entry : report.ledger) {
    if (entry.kind == DamageKind::kTornStaging) {
      saw_torn = true;
      EXPECT_EQ(entry.generation, -1);
      EXPECT_NE(entry.file.find(".tmp"), std::string::npos);
    }
    if (entry.kind == DamageKind::kCrcMismatch) {
      saw_crc = true;
      EXPECT_EQ(entry.generation, corrupted_gen);
      EXPECT_NE(entry.file.find(corrupted_file), std::string::npos);
    }
  }
  EXPECT_EQ(saw_torn, pre_commit);
  EXPECT_EQ(saw_crc, corrupted_gen >= 0);
  if (corrupted_gen >= 0) {
    EXPECT_LT(report.generation, corrupted_gen)
        << "recovery adopted a corrupted generation";
  }

  // Resume contract: the adopted generation's feed index replayed forward
  // must land on the byte-identical final state.
  if (report.resume_index > feed.size()) {
    ADD_FAILURE() << "resume index " << report.resume_index
                  << " past the end of the feed";
    fs::remove_all(dir);
    return true;
  }
  if (report.generation < 0) EXPECT_EQ(report.resume_index, 0u);
  for (std::size_t i = report.resume_index; i < feed.size(); ++i) {
    resumed->ingest_routed(feed[i]);
  }
  resumed->finish();
  resumed->rotate_now();

  EXPECT_EQ(snapshot_blob(*resumed), ref.blob)
      << "resumed fleet state diverged from the uninterrupted run";
  EXPECT_EQ(resumed->last_generation(), ref.final_generation);
  EXPECT_EQ(committed_generations(dir), ref.generations)
      << "generation numbering failed to converge";
  fs::remove_all(dir);
  return true;
}

class RotationCrashMatrix : public ::testing::TestWithParam<unsigned> {
 protected:
  fs::path matrix_dir(const char* tag) const {
    return fs::temp_directory_path() /
           ("dm_serve_crash_" + std::to_string(GetParam()) + "_" + tag);
  }
};

TEST_P(RotationCrashMatrix, EveryKillPointRecoversByteIdentical) {
  exec::ThreadPool pool(GetParam());
  const fs::path ref_dir = matrix_dir("ref");
  const ReferenceRun ref = run_reference(&pool, ref_dir);
  fs::remove_all(ref_dir);
  ASSERT_FALSE(ref.blob.empty());
  ASSERT_GE(ref.final_generation, 2);  // rotation actually happened

  const fs::path dir = matrix_dir("cell");
  for (std::uint64_t s = 1; s <= kRotationStepCount; ++s) {
    const auto step = static_cast<RotationStep>(s);
    for (const bool corrupt : {false, true}) {
      EXPECT_TRUE(run_crash_cell(&pool, dir, ref, step, 1, corrupt))
          << rotation_step_name(step) << " was never reached";
    }
  }
}

TEST_P(RotationCrashMatrix, MidGenerationAndRepeatedKillPoints) {
  exec::ThreadPool pool(GetParam());
  const fs::path ref_dir = matrix_dir("ref2");
  const ReferenceRun ref = run_reference(&pool, ref_dir);
  fs::remove_all(ref_dir);

  const fs::path dir = matrix_dir("cell2");
  // Crash on the 3rd shard file of a rotation (mid-generation), on the 2nd
  // committed generation, and on the 2nd GC pass.
  EXPECT_TRUE(
      run_crash_cell(&pool, dir, ref, RotationStep::kShardRename, 3, false));
  EXPECT_TRUE(run_crash_cell(&pool, dir, ref, RotationStep::kShardWrite, 8,
                             false));  // 2nd rotation, mid-stage
  EXPECT_TRUE(run_crash_cell(&pool, dir, ref, RotationStep::kCommit, 2, true));
  EXPECT_TRUE(
      run_crash_cell(&pool, dir, ref, RotationStep::kGcRemove, 2, false));
}

INSTANTIATE_TEST_SUITE_P(Threads, RotationCrashMatrix,
                         ::testing::Values(1u, 2u, 8u));

// Randomized soak over the same harness: arbitrary (step, occurrence,
// corruption) cells must always converge. DM_SOAK_SECONDS extends it; the
// failing cell is printed on any assertion.
TEST(RotationCrashSoak, RandomCellsAlwaysConverge) {
  const char* env = std::getenv("DM_SOAK_SECONDS");
  const double seconds = env != nullptr ? std::atof(env) : 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(seconds * 1000));

  exec::ThreadPool pool(2);
  const fs::path ref_dir =
      fs::temp_directory_path() / "dm_serve_crash_soak_ref";
  const ReferenceRun ref = run_reference(&pool, ref_dir);
  fs::remove_all(ref_dir);
  const fs::path dir = fs::temp_directory_path() / "dm_serve_crash_soak";

  std::random_device device;
  std::mt19937_64 rng((static_cast<std::uint64_t>(device()) << 32) |
                      device());
  std::size_t iterations = 0;
  do {
    const auto step = static_cast<RotationStep>(1 + rng() % kRotationStepCount);
    const std::uint64_t occurrence = 1 + rng() % 12;
    const bool corrupt = rng() % 2 == 0;
    SCOPED_TRACE("soak cell: step " +
                 std::string(rotation_step_name(step)) + " occurrence " +
                 std::to_string(occurrence) +
                 (corrupt ? " corrupt" : " clean"));
    // Unreachable occurrences are fine in the soak: the cell reports vacuous.
    run_crash_cell(&pool, dir, ref, step, occurrence, corrupt);
    ++iterations;
  } while (std::chrono::steady_clock::now() < deadline || iterations < 2);
  SUCCEED() << iterations << " soak cells";
}

// Rotator-level damage taxonomy: each tamper shape must be classified with
// its own DamageKind and recovery must fall back to the older generation.
TEST(CheckpointRotator, ClassifiesEveryDamageKind) {
  const fs::path dir = fs::temp_directory_path() / "dm_rotator_damage";

  const auto make_files = [](std::uint8_t salt) {
    std::vector<ShardFile> files;
    files.push_back({"a.bin", {salt, 1, 2, 3, 4, 5, 6, 7, 8, 9}});
    files.push_back({"b.bin", {static_cast<std::uint8_t>(salt + 1), 9, 8}});
    return files;
  };

  struct Case {
    const char* label;
    DamageKind expected;
    void (*tamper)(const fs::path& gen_dir);
  };
  const Case cases[] = {
      {"delete MANIFEST", DamageKind::kMissingManifest,
       [](const fs::path& g) { fs::remove(g / "MANIFEST"); }},
      {"garble MANIFEST", DamageKind::kBadManifest,
       [](const fs::path& g) {
         std::ofstream out(g / "MANIFEST", std::ios::trunc);
         out << "DMMF 1\nnot a manifest\n";
       }},
      {"delete file", DamageKind::kMissingFile,
       [](const fs::path& g) { fs::remove(g / "a.bin"); }},
      {"truncate file", DamageKind::kSizeMismatch,
       [](const fs::path& g) { fs::resize_file(g / "b.bin", 1); }},
      {"flip file byte", DamageKind::kCrcMismatch,
       [](const fs::path& g) {
         std::fstream io(g / "a.bin",
                         std::ios::binary | std::ios::in | std::ios::out);
         io.seekp(4);
         io.put(static_cast<char>(0x7f));
       }},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    fs::remove_all(dir);
    CheckpointRotator rotator(dir.string(), 4);
    EXPECT_EQ(rotator.rotate(make_files(0)), 0);
    EXPECT_EQ(rotator.rotate(make_files(10)), 1);
    c.tamper(dir / "gen-1");

    std::vector<DamageEntry> ledger;
    const LoadedGeneration loaded = rotator.recover(ledger);
    EXPECT_EQ(loaded.generation, 0);  // fell back one generation
    ASSERT_EQ(loaded.files.size(), 2u);
    EXPECT_EQ(loaded.files[0].bytes, make_files(0)[0].bytes);
    bool saw_expected = false;
    for (const DamageEntry& entry : ledger) {
      if (entry.kind == c.expected) {
        saw_expected = true;
        EXPECT_EQ(entry.generation, 1);
      }
    }
    EXPECT_TRUE(saw_expected) << damage_kind_name(c.expected);
    // The damaged generation is gone: numbering re-converges.
    EXPECT_EQ(committed_generations(dir), (std::vector<std::int64_t>{0}));
    EXPECT_EQ(rotator.rotate(make_files(20)), 1);
  }
  fs::remove_all(dir);
}

TEST(CheckpointRotator, SemanticRejectionFallsBackWithUndecodable) {
  // A CRC-clean generation the decoder rejects (wrong file set) must fall
  // back with kUndecodable — the supervisor uses this to survive a
  // generation written by a different tenant configuration.
  const fs::path dir = fs::temp_directory_path() / "dm_rotator_undecodable";
  fs::remove_all(dir);
  {
    exec::ThreadPool pool(0);
    auto sup = make_supervisor(dir.string(), &pool);
    const auto& feed = scenario_feed();
    for (std::size_t i = 0; i < feed.size() / 4; ++i) {
      sup->ingest_routed(feed[i]);
    }
    sup->rotate_now();
    EXPECT_GE(sup->last_generation(), 0);
  }
  {
    // Commit a bogus newer generation with a file set no supervisor of this
    // configuration would ever write.
    CheckpointRotator rotator(dir.string(), 2);
    std::vector<ShardFile> junk;
    junk.push_back({"junk.bin", {1, 2, 3}});
    rotator.rotate(std::move(junk));
  }
  exec::ThreadPool pool(0);
  auto resumed = make_supervisor(dir.string(), &pool);
  const RecoveryReport report = resumed->recover();
  EXPECT_GE(report.generation, 0);
  EXPECT_GT(report.resume_index, 0u);
  bool saw_undecodable = false;
  for (const DamageEntry& entry : report.ledger) {
    saw_undecodable |= entry.kind == DamageKind::kUndecodable;
  }
  EXPECT_TRUE(saw_undecodable);
  fs::remove_all(dir);
}

TEST(CheckpointRotator, GcKeepsExactlyTheNewestGenerations) {
  const fs::path dir = fs::temp_directory_path() / "dm_rotator_gc";
  fs::remove_all(dir);
  CheckpointRotator rotator(dir.string(), 3);
  for (std::uint8_t i = 0; i < 8; ++i) {
    std::vector<ShardFile> files;
    files.push_back({"x.bin", {i}});
    EXPECT_EQ(rotator.rotate(std::move(files)), i);
  }
  EXPECT_EQ(rotator.generations(),
            (std::vector<std::int64_t>{5, 6, 7}));
  EXPECT_EQ(committed_generations(dir),
            (std::vector<std::int64_t>{5, 6, 7}));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dm::serve
