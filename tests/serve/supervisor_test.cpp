// Supervisor admission control: deterministic 1:k shedding with exact
// ledgers, outage-informed baselines, checkpointed event sequences, and a
// status report that adds up.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "serve/supervisor.h"
#include "sim/trace_generator.h"

namespace dm::serve {
namespace {

using netflow::FlowRecord;

netflow::PrefixSet sim_cloud_space() {
  netflow::PrefixSet set;
  set.add(netflow::Prefix(netflow::IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

/// One VIP, minutes 0..29, with an offered-rate burst in minutes 5-6 that
/// must trip a 100-records-per-minute budget.
std::vector<FlowRecord> burst_feed() {
  std::vector<FlowRecord> feed;
  for (util::Minute minute = 0; minute < 30; ++minute) {
    const int count = (minute == 5 || minute == 6) ? 300 : 50;
    for (int i = 0; i < count; ++i) {
      FlowRecord r;
      r.minute = minute;
      r.src_ip = netflow::IPv4(0x08000000u + static_cast<std::uint32_t>(
                                                 minute * 1000 + i));
      r.dst_ip = netflow::IPv4::from_octets(100, 64, 0, 1);
      r.packets = 10;
      r.bytes = 400;
      feed.push_back(r);
    }
  }
  return feed;
}

std::vector<FlowRecord> scenario_feed() {
  auto records = sim::generate_trace(sim::Scenario(sim::ScenarioConfig::smoke()))
                     .records;
  std::stable_sort(records.begin(), records.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.minute < b.minute;
                   });
  return records;
}

ServeConfig base_config() {
  ServeConfig config;
  config.seed = 21;
  return config;  // no state_dir: checkpoint rotation disabled
}

std::string snapshot_blob(const Supervisor& sup) {
  std::string blob;
  for (const ShardFile& f : sup.snapshot_files()) {
    blob += f.name;
    blob.push_back('\0');
    blob.append(f.bytes.begin(), f.bytes.end());
  }
  return blob;
}

TEST(Supervisor, ShardAssignmentIsStableAndSpreads) {
  std::set<std::uint32_t> used;
  for (std::uint32_t vip = 0; vip < 1000; ++vip) {
    const std::uint32_t s = Supervisor::shard_of(vip, 4);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, Supervisor::shard_of(vip, 4));
    used.insert(s);
  }
  EXPECT_EQ(used.size(), 4u);  // splitmix64 spreads even contiguous VIPs
  EXPECT_EQ(Supervisor::shard_of(12345, 1), 0u);
}

TEST(Supervisor, RateBudgetShedsWithExactLedger) {
  const auto feed = burst_feed();
  std::vector<TenantSpec> tenants;
  tenants.push_back({"acme", 1, 100, 0, 4});
  Supervisor sup(sim_cloud_space(), nullptr, std::move(tenants), base_config());
  for (const auto& r : feed) sup.ingest(0, r);
  sup.finish();

  const TenantBook& book = sup.book(0);
  EXPECT_EQ(book.offered, feed.size());
  EXPECT_EQ(book.offered, book.admitted + book.shed);
  EXPECT_GT(book.shed, 0u);

  // Exactly the two burst minutes shed, and each ledger entry adds up. The
  // first 100 records of a minute pass before the budget trips; past it the
  // 1:4 sampler admits about a quarter.
  ASSERT_EQ(book.ledger.size(), 2u);
  for (const ShedLedgerEntry& entry : book.ledger) {
    EXPECT_TRUE(entry.minute == 5 || entry.minute == 6);
    EXPECT_EQ(entry.offered, 300u);
    EXPECT_EQ(entry.offered, entry.admitted + entry.shed);
    EXPECT_GE(entry.admitted, 100u);
    EXPECT_LT(entry.admitted, 200u);
  }
  // Ledger + open buckets + folded totals account for every shed record.
  EXPECT_EQ(book.ledger[0].shed + book.ledger[1].shed, book.shed);

  // Per-shard books agree with the tenant book (single shard here).
  EXPECT_EQ(book.shards[0].offered, book.offered);
  EXPECT_EQ(book.shards[0].admitted, book.admitted);
  EXPECT_EQ(book.shards[0].shed, book.shed);
  EXPECT_EQ(sup.monitor(0, 0).records_ingested(), book.admitted);
}

TEST(Supervisor, ShedMinutesBecomeOutagesForTheShardMonitor) {
  // Replay the supervisor's exact admission decisions into a bare monitor
  // with note_outage applied at the same points: if the supervisor wires
  // shed minutes into the excluded-silence path correctly, the two monitors
  // are byte-identical.
  const auto feed = burst_feed();
  std::vector<TenantSpec> tenants;
  tenants.push_back({"acme", 1, 100, 0, 4});
  ServeConfig config = base_config();
  Supervisor sup(sim_cloud_space(), nullptr, std::move(tenants), config);

  detect::StreamMonitor control(sim_cloud_space(), nullptr, config.detection,
                                config.timeouts, nullptr, nullptr,
                                config.stream);
  std::size_t ledger_seen = 0;
  for (const auto& r : feed) {
    const std::uint64_t admitted_before = sup.book(0).admitted;
    sup.ingest(0, r);
    // A ledger entry appearing means the supervisor just closed a shed
    // minute and declared the outage before ingesting `r` — mirror that.
    while (sup.book(0).ledger.size() > ledger_seen) {
      const ShedLedgerEntry& e = sup.book(0).ledger[ledger_seen++];
      control.note_outage(e.minute, e.minute + 1);
    }
    if (sup.book(0).admitted > admitted_before) control.ingest(r);
  }
  sup.finish();  // closes the remaining buckets (outages land before finish)
  while (sup.book(0).ledger.size() > ledger_seen) {
    const ShedLedgerEntry& e = sup.book(0).ledger[ledger_seen++];
    control.note_outage(e.minute, e.minute + 1);
  }
  control.finish();

  std::ostringstream sup_bytes(std::ios::binary);
  sup.monitor(0, 0).checkpoint(sup_bytes);
  std::ostringstream control_bytes(std::ios::binary);
  control.checkpoint(control_bytes);
  EXPECT_EQ(sup_bytes.str(), control_bytes.str());
}

TEST(Supervisor, MemoryBudgetShedsOncePressured) {
  const auto feed = burst_feed();
  std::vector<TenantSpec> tenants;
  tenants.push_back({"tiny", 1, 0, 1, 8});  // 1-byte budget: sheds after the
  ServeConfig config = base_config();       // first gauge refresh
  config.gauge_refresh = 16;
  Supervisor sup(sim_cloud_space(), nullptr, std::move(tenants), config);
  for (const auto& r : feed) sup.ingest(0, r);
  sup.finish();
  const TenantBook& book = sup.book(0);
  EXPECT_GT(book.shed, 0u);
  EXPECT_GT(book.admitted, 0u);
  EXPECT_EQ(book.offered, book.admitted + book.shed);
  EXPECT_GT(book.shards[0].state_gauge, 1u);
}

TEST(Supervisor, IdenticalRunsProduceIdenticalStateAcrossPools) {
  const auto feed = scenario_feed();
  auto make_tenants = [] {
    std::vector<TenantSpec> tenants;
    tenants.push_back({"alpha", 2, 400, 0, 4});
    tenants.push_back({"beta", 2, 0, 0, 8});
    return tenants;
  };
  std::string first_blob;
  for (const unsigned workers : {0u, 2u, 8u}) {
    exec::ThreadPool pool(workers);
    Supervisor sup(sim_cloud_space(), nullptr, make_tenants(), base_config(),
                   nullptr, &pool);
    for (const auto& r : feed) sup.ingest_routed(r);
    sup.finish();
    const std::string blob = snapshot_blob(sup);
    if (first_blob.empty()) {
      first_blob = blob;
      EXPECT_GT(sup.book(0).offered + sup.book(1).offered, 0u);
      EXPECT_EQ(sup.book(0).offered + sup.book(1).offered, feed.size());
    } else {
      EXPECT_EQ(blob, first_blob) << workers << " workers diverged";
    }
  }
}

TEST(Supervisor, EventsCarryContiguousCheckpointedSequences) {
  const auto feed = scenario_feed();

  class CollectSink final : public Sink {
   public:
    bool deliver(const Event& event) override {
      events.push_back(event);
      return true;
    }
    std::vector<Event> events;
  };

  CollectSink sink;
  WriterConfig wconfig;
  wconfig.threaded = false;
  BufferedWriter writer(sink, wconfig);
  std::vector<TenantSpec> tenants;
  tenants.push_back({"solo", 1, 0, 0, 8});
  Supervisor sup(sim_cloud_space(), nullptr, std::move(tenants), base_config(),
                 &writer);
  for (const auto& r : feed) sup.ingest(0, r);
  sup.finish();
  writer.close();

  ASSERT_FALSE(sink.events.empty());
  for (std::size_t i = 0; i < sink.events.size(); ++i) {
    EXPECT_EQ(sink.events[i].seq, i);
    EXPECT_EQ(sink.events[i].tenant, "solo");
  }
  EXPECT_EQ(sup.book(0).event_seq, sink.events.size());
  EXPECT_EQ(sink.events.size(),
            sup.monitor(0, 0).alerts() + sup.monitor(0, 0).incidents());
}

TEST(Supervisor, StatusReportAddsUp) {
  const auto feed = burst_feed();
  std::vector<TenantSpec> tenants;
  tenants.push_back({"acme", 1, 100, 0, 4});
  Supervisor sup(sim_cloud_space(), nullptr, std::move(tenants), base_config());
  for (const auto& r : feed) sup.ingest(0, r);
  sup.finish();
  const std::string report = sup.status_report();
  EXPECT_NE(report.find("acme"), std::string::npos);
  EXPECT_NE(report.find("records routed: " + std::to_string(feed.size())),
            std::string::npos);
  EXPECT_NE(report.find(std::to_string(sup.book(0).shed)), std::string::npos);
}

}  // namespace
}  // namespace dm::serve
