// BufferedWriter: the retry/backoff/overflow stage must produce identical
// sink bytes threaded and inline, count every retry/drop/spill exactly, and
// never lose an event under kSpill (delivered + spilled == pushed).
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "serve/sink.h"
#include "serve/writer.h"

namespace dm::serve {
namespace {

Event sample_event(std::uint64_t seq) {
  Event e;
  e.kind = seq % 2 == 0 ? Event::Kind::kAlert : Event::Kind::kIncident;
  e.tenant = "t" + std::to_string(seq % 2);
  e.seq = seq;
  e.vip = static_cast<std::uint32_t>(0x64400000 + seq);
  e.start = static_cast<util::Minute>(seq);
  e.end = static_cast<util::Minute>(seq + 1);
  e.packets = seq * 17;
  e.remotes = static_cast<std::uint32_t>(seq % 11);
  return e;
}

/// Collects delivered events; optionally blocks deliveries on a gate so
/// tests can force the queue full at a deterministic point.
class GateSink final : public Sink {
 public:
  bool deliver(const Event& event) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      entered_cv_.notify_all();
      gate_cv_.wait(lock, [this] { return open_; });
    }
    std::lock_guard<std::mutex> lock(mu_);
    delivered.push_back(event);
    return true;
  }

  /// Blocks until `n` deliveries have entered deliver().
  void await_entered(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_ >= n; });
  }

  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    gate_cv_.notify_all();
  }

  std::vector<Event> delivered;

 private:
  std::mutex mu_;
  std::condition_variable gate_cv_;
  std::condition_variable entered_cv_;
  std::size_t entered_ = 0;
  bool open_ = false;
};

std::vector<Event> make_events(std::size_t n) {
  std::vector<Event> events;
  for (std::uint64_t i = 0; i < n; ++i) events.push_back(sample_event(i));
  return events;
}

TEST(BufferedWriter, ThreadedAndInlineProduceIdenticalSinkBytes) {
  const auto events = make_events(200);
  std::string threaded_bytes;
  std::string inline_bytes;
  for (const bool threaded : {true, false}) {
    std::ostringstream out(std::ios::binary);
    BinarySink sink(out);
    WriterConfig config;
    config.threaded = threaded;
    config.capacity = 8;
    BufferedWriter writer(sink, config);
    for (const Event& e : events) writer.push(e);
    writer.close();
    (threaded ? threaded_bytes : inline_bytes) = out.str();
    const WriterStats stats = writer.stats();
    EXPECT_EQ(stats.enqueued, events.size());
    EXPECT_EQ(stats.delivered, events.size());
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.spilled, 0u);
  }
  ASSERT_FALSE(threaded_bytes.empty());
  EXPECT_EQ(threaded_bytes, inline_bytes);
  EXPECT_EQ(decode_events({threaded_bytes.begin(), threaded_bytes.end()}),
            events);
}

TEST(BufferedWriter, RetriesAreExactAgainstACappedFlakySink) {
  // fail_prob 1 with streak cap 2: every event fails twice then succeeds,
  // so delivered == all, retries == 2 per event, dropped == 0.
  const auto events = make_events(50);
  std::ostringstream out(std::ios::binary);
  BinarySink inner(out);
  FlakySink flaky(inner, 13, 1.0, 2);
  WriterConfig config;
  config.threaded = false;
  config.max_attempts = 5;
  BufferedWriter writer(flaky, config);
  for (const Event& e : events) writer.push(e);
  writer.close();

  const WriterStats stats = writer.stats();
  EXPECT_EQ(stats.enqueued, 50u);
  EXPECT_EQ(stats.delivered, 50u);
  EXPECT_EQ(stats.retries, 100u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(flaky.attempts(), 150u);
  EXPECT_EQ(flaky.failures(), 100u);
  const std::string bytes = out.str();
  EXPECT_EQ(decode_events({bytes.begin(), bytes.end()}), events);
}

TEST(BufferedWriter, ExhaustedEventsAreDroppedAndCounted) {
  const auto events = make_events(20);
  NullSink null;
  FlakySink flaky(null, 1, 1.0);  // fails every attempt, no cap
  WriterConfig config;
  config.threaded = false;
  config.max_attempts = 3;
  BufferedWriter writer(flaky, config);
  for (const Event& e : events) writer.push(e);
  writer.close();

  const WriterStats stats = writer.stats();
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.dropped, 20u);
  EXPECT_EQ(stats.retries, 40u);  // max_attempts - 1 per event
  EXPECT_EQ(flaky.attempts(), 60u);
}

TEST(BufferedWriter, BackoffScheduleIsDeterministicAndBounded) {
  NullSink null;
  WriterConfig config;
  config.base_delay = 2;
  config.max_delay = 32;
  config.jitter = 3;
  BufferedWriter a(null, config);
  BufferedWriter b(null, config);
  std::uint64_t prev = 0;
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    const std::uint64_t units = a.backoff_units(7, attempt);
    EXPECT_EQ(units, b.backoff_units(7, attempt)) << attempt;
    const std::uint64_t exponential =
        std::min<std::uint64_t>(config.max_delay, config.base_delay << attempt);
    EXPECT_GE(units, exponential);
    EXPECT_LE(units, exponential + config.jitter);
    EXPECT_GE(units + config.jitter, prev);  // grows modulo jitter, then caps
    prev = units;
  }
  // Different (seq, attempt) pairs draw different jitter eventually.
  bool any_difference = false;
  for (std::uint64_t seq = 0; seq < 32 && !any_difference; ++seq) {
    any_difference = a.backoff_units(seq, 10) != a.backoff_units(seq + 1, 10);
  }
  EXPECT_TRUE(any_difference);
}

TEST(BufferedWriter, BlockPolicyDeliversEverythingInOrder) {
  const auto events = make_events(100);
  std::ostringstream out(std::ios::binary);
  BinarySink sink(out);
  WriterConfig config;
  config.capacity = 2;  // tiny queue: pushes must block, never drop
  config.overflow = OverflowPolicy::kBlock;
  BufferedWriter writer(sink, config);
  for (const Event& e : events) writer.push(e);
  writer.close();
  const WriterStats stats = writer.stats();
  EXPECT_EQ(stats.delivered, 100u);
  EXPECT_EQ(stats.spilled, 0u);
  const std::string bytes = out.str();
  EXPECT_EQ(decode_events({bytes.begin(), bytes.end()}), events);
}

TEST(BufferedWriter, SpillPolicyFailsOpenAndRoundTrips) {
  const auto spill_path =
      std::filesystem::temp_directory_path() / "dm_writer_spill_test.dmev";
  std::filesystem::remove(spill_path);

  GateSink sink;
  WriterConfig config;
  config.capacity = 1;
  config.overflow = OverflowPolicy::kSpill;
  config.spill_path = spill_path.string();
  const auto events = make_events(6);
  {
    BufferedWriter writer(sink, config);
    writer.push(events[0]);
    sink.await_entered(1);  // worker holds events[0] inside deliver()
    writer.push(events[1]);  // fills the queue
    for (std::size_t i = 2; i < events.size(); ++i) {
      writer.push(events[i]);  // queue full: spills, never blocks
    }
    sink.open();
    writer.close();

    const WriterStats stats = writer.stats();
    EXPECT_EQ(stats.enqueued, events.size());
    EXPECT_EQ(stats.delivered, 2u);
    EXPECT_EQ(stats.spilled, events.size() - 2);
    EXPECT_EQ(sink.delivered.size(), 2u);
  }

  // The spill file replays: delivered + spilled == everything pushed.
  std::ifstream in(spill_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  const std::string blob((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::vector<Event> spilled = decode_events({blob.begin(), blob.end()});
  EXPECT_EQ(spilled.size(), events.size() - 2);
  std::vector<Event> recovered = sink.delivered;
  recovered.insert(recovered.end(), spilled.begin(), spilled.end());
  std::sort(recovered.begin(), recovered.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  EXPECT_EQ(recovered, events);
  std::filesystem::remove(spill_path);
}

TEST(BufferedWriter, PushAfterCloseDeliversInline) {
  std::ostringstream out(std::ios::binary);
  BinarySink sink(out);
  BufferedWriter writer(sink, WriterConfig{});
  writer.push(sample_event(0));
  writer.close();
  writer.push(sample_event(1));
  EXPECT_EQ(writer.stats().delivered, 2u);
  const std::string bytes = out.str();
  EXPECT_EQ(decode_events({bytes.begin(), bytes.end()}), make_events(2));
}

}  // namespace
}  // namespace dm::serve
