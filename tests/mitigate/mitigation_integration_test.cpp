// Mitigation engine over a full study: the §7/§5.2 claims hold end to end.
#include <gtest/gtest.h>

#include "core/study.h"
#include "mitigate/engine.h"
#include "mitigate/provisioning.h"

namespace dm::mitigate {
namespace {

const core::Study& study() {
  static const core::Study instance{[] {
    auto config = sim::ScenarioConfig::smoke();
    config.vips.vip_count = 200;
    config.days = 2;
    config.seed = 808;
    return config;
  }()};
  return instance;
}

TEST(MitigationIntegration, AbsorbsMostAttackTraffic) {
  const MitigationEngine engine{MitigationPolicy{}};
  const auto report =
      engine.evaluate(study().trace(), study().detection().incidents,
                      study().sampling(), &study().blacklist());
  EXPECT_GT(report.total_absorption, 0.4);
  EXPECT_LE(report.total_absorption, 1.0);
  EXPECT_FALSE(report.actions.empty());
  EXPECT_EQ(report.outcomes.size(), study().detection().incidents.size());
  for (const auto& outcome : report.outcomes) {
    EXPECT_LE(outcome.absorbed_packets, outcome.attack_packets);
  }
}

TEST(MitigationIntegration, SlowerReactionAbsorbsLess) {
  MitigationPolicy fast;
  fast.inline_latency = 0;
  MitigationPolicy slow;
  slow.inline_latency = 10;
  const auto fast_report = MitigationEngine{fast}.evaluate(
      study().trace(), study().detection().incidents, study().sampling(),
      &study().blacklist());
  const auto slow_report = MitigationEngine{slow}.evaluate(
      study().trace(), study().detection().incidents, study().sampling(),
      &study().blacklist());
  EXPECT_GT(fast_report.total_absorption, slow_report.total_absorption);
}

TEST(MitigationIntegration, SpoofAwarenessReducesBlacklistWins) {
  // Telling the engine which SYN floods are spoofed can only reduce (or
  // keep) what source blacklists claim to absorb.
  const auto spoof = analysis::analyze_spoofing(
      study().trace(), study().detection().incidents, &study().blacklist());
  MitigationPolicy blacklist_only;
  blacklist_only.enable_syn_cookies = false;
  blacklist_only.enable_rate_limit = false;
  blacklist_only.enable_port_filter = false;
  blacklist_only.enable_outbound_cap = false;
  blacklist_only.enable_smtp_limit = false;
  blacklist_only.enable_vip_shutdown = false;
  const MitigationEngine engine{blacklist_only};
  const auto naive = engine.evaluate(study().trace(),
                                     study().detection().incidents,
                                     study().sampling(), &study().blacklist());
  const auto aware = engine.evaluate(
      study().trace(), study().detection().incidents, study().sampling(),
      &study().blacklist(), &spoof);
  EXPECT_LE(aware.total_absorption, naive.total_absorption + 1e-12);
}

TEST(MitigationIntegration, ProvisioningOrdering) {
  for (netflow::Direction dir :
       {netflow::Direction::kInbound, netflow::Direction::kOutbound}) {
    const auto plan = plan_provisioning(study().detection().minutes, dir,
                                        study().sampling());
    if (plan.attacked_vips == 0) continue;
    // Per-VIP peak >= cloud peak >= elastic p99, by construction of the
    // three strategies.
    EXPECT_GE(plan.per_vip_peak_cores, plan.cloud_peak_cores - 1e-9);
    EXPECT_GE(plan.cloud_peak_cores, plan.elastic_cores - 1e-9);
    EXPECT_GT(plan.overprovision_factor(), 1.0);
  }
}

}  // namespace
}  // namespace dm::mitigate
