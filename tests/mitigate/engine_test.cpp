#include "mitigate/engine.h"

#include <gtest/gtest.h>

namespace dm::mitigate {
namespace {

using detect::AttackIncident;
using netflow::Direction;
using netflow::FlowRecord;
using netflow::IPv4;
using netflow::Protocol;
using netflow::TcpFlags;
using sim::AttackType;

const IPv4 kVip = IPv4::from_octets(100, 64, 0, 3);

netflow::PrefixSet cloud_space() {
  netflow::PrefixSet set;
  set.add(netflow::Prefix(IPv4::from_octets(100, 64, 0, 0), 12));
  return set;
}

/// A 10-minute inbound SYN flood, 600 sampled pkts/min from `sources`
/// sources; optionally with juno fixed source ports.
netflow::WindowedTrace syn_flood_trace(std::uint32_t sources,
                                       bool juno = false) {
  std::vector<FlowRecord> records;
  for (util::Minute m = 100; m < 110; ++m) {
    for (std::uint32_t s = 0; s < 600; ++s) {
      FlowRecord r;
      r.minute = m;
      r.src_ip = IPv4(0x04000000u + s % sources);
      r.dst_ip = kVip;
      r.src_port = juno ? (s % 2 == 0 ? 1024 : 3072)
                        : static_cast<std::uint16_t>(10'000 + s);
      r.dst_port = 80;
      r.protocol = Protocol::kTcp;
      r.tcp_flags = TcpFlags::kSyn;
      r.packets = 1;
      r.bytes = 40;
      records.push_back(r);
    }
  }
  return netflow::aggregate_windows(std::move(records), cloud_space());
}

AttackIncident syn_incident() {
  AttackIncident inc;
  inc.vip = kVip;
  inc.direction = Direction::kInbound;
  inc.type = AttackType::kSynFlood;
  inc.start = 100;
  inc.end = 110;
  inc.active_minutes = 10;
  inc.peak_sampled_ppm = 600;
  inc.total_sampled_packets = 6'000;
  return inc;
}

TEST(MitigationEngine, SynCookiesAbsorbAfterLatency) {
  const auto trace = syn_flood_trace(500);
  MitigationPolicy policy;
  policy.enable_source_blacklist = false;
  policy.enable_rate_limit = false;
  policy.enable_port_filter = false;
  policy.inline_latency = 2;
  const MitigationEngine engine(policy);
  std::vector<AttackIncident> incidents{syn_incident()};
  const auto report = engine.evaluate(trace, incidents);

  ASSERT_EQ(report.outcomes.size(), 1u);
  const auto& outcome = report.outcomes[0];
  EXPECT_EQ(outcome.attack_packets, 6'000u);
  // 2 of 10 minutes unprotected: 80% absorbed.
  EXPECT_NEAR(static_cast<double>(outcome.absorbed_packets), 4'800.0, 10.0);
  EXPECT_EQ(outcome.time_to_mitigate, 2);
  ASSERT_EQ(report.actions.size(), 1u);
  EXPECT_EQ(report.actions[0].kind, ActionKind::kSynCookies);
}

TEST(MitigationEngine, BlacklistCoverageTracksConcentration) {
  MitigationPolicy policy;
  policy.enable_syn_cookies = false;
  policy.enable_rate_limit = false;
  policy.enable_port_filter = false;
  policy.blacklist_entries = 64;
  policy.inline_latency = 0;
  const MitigationEngine engine(policy);
  std::vector<AttackIncident> incidents{syn_incident()};

  // 10 sources: 64-entry blacklist covers everything.
  const auto concentrated = engine.evaluate(syn_flood_trace(10), incidents);
  EXPECT_NEAR(concentrated.total_absorption, 1.0, 1e-6);

  // 600 sources: only ~64/600 of the traffic is blockable.
  const auto diffuse = engine.evaluate(syn_flood_trace(600), incidents);
  EXPECT_NEAR(diffuse.total_absorption, 64.0 / 600.0, 0.03);
}

TEST(MitigationEngine, SpoofedIncidentsEvadeBlacklist) {
  MitigationPolicy policy;
  policy.enable_syn_cookies = false;
  policy.enable_rate_limit = false;
  policy.enable_port_filter = false;
  const MitigationEngine engine(policy);
  std::vector<AttackIncident> incidents{syn_incident()};

  analysis::SpoofResult spoof;
  analysis::SpoofVerdict verdict;
  verdict.incident_index = 0;
  verdict.spoofed = true;
  spoof.verdicts.push_back(verdict);

  const auto report = engine.evaluate(syn_flood_trace(10), incidents, 4096,
                                      nullptr, &spoof);
  EXPECT_DOUBLE_EQ(report.total_absorption, 0.0);
  EXPECT_TRUE(report.actions.empty());
}

TEST(MitigationEngine, PortFilterCatchesJunoFloods) {
  MitigationPolicy policy;
  policy.enable_syn_cookies = false;
  policy.enable_rate_limit = false;
  policy.enable_source_blacklist = false;
  policy.inline_latency = 0;
  const MitigationEngine engine(policy);
  std::vector<AttackIncident> incidents{syn_incident()};

  const auto juno = engine.evaluate(syn_flood_trace(500, true), incidents);
  EXPECT_NEAR(juno.total_absorption, 1.0, 1e-6);
  const auto normal = engine.evaluate(syn_flood_trace(500, false), incidents);
  EXPECT_DOUBLE_EQ(normal.total_absorption, 0.0);
}

/// Outbound UDP flood trace at ~600 sampled ppm.
netflow::WindowedTrace outbound_udp_trace() {
  std::vector<FlowRecord> records;
  for (util::Minute m = 100; m < 110; ++m) {
    for (std::uint32_t s = 0; s < 20; ++s) {
      FlowRecord r;
      r.minute = m;
      r.src_ip = kVip;
      r.dst_ip = IPv4(0x04000000u + s);
      r.src_port = 40'000;
      r.dst_port = 80;
      r.protocol = Protocol::kUdp;
      r.packets = 30;
      r.bytes = 3'000;
      records.push_back(r);
    }
  }
  return netflow::aggregate_windows(std::move(records), cloud_space());
}

TEST(MitigationEngine, OutboundCapClipsFloods) {
  MitigationPolicy policy;
  policy.enable_vip_shutdown = false;
  policy.outbound_cap_pps = 10'000.0;  // ~600 sampled ppm -> ~41 Kpps true
  policy.inline_latency = 0;
  const MitigationEngine engine(policy);

  AttackIncident inc = syn_incident();
  inc.direction = Direction::kOutbound;
  inc.type = AttackType::kUdpFlood;
  const auto report =
      engine.evaluate(outbound_udp_trace(), std::vector<AttackIncident>{inc});
  // Cap passes 10K of ~41K pps: ~75% absorbed.
  EXPECT_NEAR(report.total_absorption, 1.0 - 10'000.0 / (600.0 * 4096 / 60),
              0.05);
}

TEST(MitigationEngine, ShutdownAfterRepeatOffenses) {
  MitigationPolicy policy;
  policy.enable_outbound_cap = false;
  policy.enable_smtp_limit = false;
  policy.shutdown_after_incidents = 2;
  policy.shutdown_latency = 5;
  const MitigationEngine engine(policy);

  // Three outbound incidents on the same VIP; the trace only covers the
  // window of the first (packet accounting uses what traffic exists).
  std::vector<AttackIncident> incidents;
  for (int k = 0; k < 3; ++k) {
    AttackIncident inc = syn_incident();
    inc.direction = Direction::kOutbound;
    inc.type = AttackType::kUdpFlood;
    inc.start = 100 + k * 200;
    inc.end = inc.start + 10;
    incidents.push_back(inc);
  }
  const auto report = engine.evaluate(outbound_udp_trace(), incidents);
  EXPECT_EQ(report.shutdown_vips, 1u);
  // Shutdown fires at the 2nd incident (start 300) + 5; the 3rd incident
  // (start 500) is fully absorbed — but it has no trace packets here, so
  // assert via the actions instead.
  bool third_shut = false;
  for (const auto& a : report.actions) {
    if (a.kind == ActionKind::kVipShutdown && a.incident_index == 2) {
      third_shut = true;
      EXPECT_DOUBLE_EQ(a.absorption, 1.0);
    }
  }
  EXPECT_TRUE(third_shut);
}

TEST(MitigationEngine, DisabledPolicyDoesNothing) {
  MitigationPolicy policy;
  policy.enable_syn_cookies = false;
  policy.enable_rate_limit = false;
  policy.enable_source_blacklist = false;
  policy.enable_port_filter = false;
  policy.enable_outbound_cap = false;
  policy.enable_smtp_limit = false;
  policy.enable_vip_shutdown = false;
  const MitigationEngine engine(policy);
  std::vector<AttackIncident> incidents{syn_incident()};
  const auto report = engine.evaluate(syn_flood_trace(10), incidents);
  EXPECT_TRUE(report.actions.empty());
  EXPECT_DOUBLE_EQ(report.total_absorption, 0.0);
  EXPECT_EQ(report.outcomes[0].time_to_mitigate, -1);
}

}  // namespace
}  // namespace dm::mitigate
