#include "mitigate/provisioning.h"

#include <gtest/gtest.h>

namespace dm::mitigate {
namespace {

using detect::MinuteDetection;
using netflow::Direction;
using sim::AttackType;

MinuteDetection det(std::uint32_t vip, util::Minute minute,
                    std::uint64_t packets) {
  return MinuteDetection{netflow::IPv4(vip), Direction::kInbound,
                         AttackType::kUdpFlood, minute, packets, 1};
}

TEST(Provisioning, EmptyInput) {
  const auto plan = plan_provisioning({}, Direction::kInbound, 4096);
  EXPECT_DOUBLE_EQ(plan.per_vip_peak_cores, 0.0);
  EXPECT_DOUBLE_EQ(plan.cloud_peak_cores, 0.0);
  EXPECT_EQ(plan.attacked_vips, 0u);
}

TEST(Provisioning, PaperArithmetic) {
  // The paper's example: a 9.2 Mpps inbound UDP flood needs ~31 SLB cores
  // at 300 Kpps/core. 9.2 Mpps = 134'700 sampled ppm at 1:4096.
  std::vector<MinuteDetection> minutes{det(1, 100, 134'700)};
  const auto plan = plan_provisioning(minutes, Direction::kInbound, 4096);
  EXPECT_NEAR(plan.cloud_peak_cores, 30.6, 0.5);
  EXPECT_NEAR(plan.per_vip_peak_cores, plan.cloud_peak_cores, 1e-9);
}

TEST(Provisioning, PerVipSumsPeaks) {
  std::vector<MinuteDetection> minutes{
      det(1, 100, 1'000), det(1, 101, 3'000),  // VIP 1 peak 3000
      det(2, 500, 2'000),                      // VIP 2 peak 2000
  };
  const auto plan = plan_provisioning(minutes, Direction::kInbound, 4096);
  EXPECT_EQ(plan.attacked_vips, 2u);
  const double expected =
      (3'000.0 + 2'000.0) * 4096 / 60.0 / 300'000.0;
  EXPECT_NEAR(plan.per_vip_peak_cores, expected, 1e-9);
}

TEST(Provisioning, CloudPeakUsesSimultaneity) {
  // Two VIPs attacked at the same minute: cloud peak is their sum; attacked
  // at different minutes: cloud peak is the max.
  std::vector<MinuteDetection> together{det(1, 100, 3'000), det(2, 100, 2'000)};
  std::vector<MinuteDetection> apart{det(1, 100, 3'000), det(2, 500, 2'000)};
  const auto plan_together =
      plan_provisioning(together, Direction::kInbound, 4096);
  const auto plan_apart = plan_provisioning(apart, Direction::kInbound, 4096);
  EXPECT_GT(plan_together.cloud_peak_cores, plan_apart.cloud_peak_cores);
  // Per-VIP provisioning cannot tell the difference — the paper's point.
  EXPECT_DOUBLE_EQ(plan_together.per_vip_peak_cores,
                   plan_apart.per_vip_peak_cores);
}

TEST(Provisioning, ElasticSizesForP99) {
  // 99 quiet minutes and one monster: elastic base sits near the quiet load.
  std::vector<MinuteDetection> minutes;
  for (util::Minute m = 0; m < 99; ++m) minutes.push_back(det(1, m, 100));
  minutes.push_back(det(1, 99, 100'000));
  const auto plan = plan_provisioning(minutes, Direction::kInbound, 4096);
  EXPECT_LT(plan.elastic_cores, plan.cloud_peak_cores / 10.0);
  EXPECT_GT(plan.elastic_burst_fraction, 0.0);
  EXPECT_LT(plan.elastic_burst_fraction, 0.05);
}

TEST(Provisioning, OverprovisionFactorGrowsWithVips) {
  // Many VIPs attacked at disjoint times: per-VIP provisioning pays every
  // peak, elastic pays roughly one.
  std::vector<MinuteDetection> minutes;
  for (std::uint32_t vip = 0; vip < 50; ++vip) {
    minutes.push_back(det(vip, vip * 10, 5'000));
  }
  const auto plan = plan_provisioning(minutes, Direction::kInbound, 4096);
  EXPECT_GT(plan.overprovision_factor(), 10.0);
}

TEST(Provisioning, DirectionFiltered) {
  std::vector<MinuteDetection> minutes{det(1, 100, 5'000)};
  const auto plan = plan_provisioning(minutes, Direction::kOutbound, 4096);
  EXPECT_EQ(plan.attacked_vips, 0u);
}

}  // namespace
}  // namespace dm::mitigate
