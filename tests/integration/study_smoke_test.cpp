// End-to-end smoke: build the world, generate a small trace, run detection,
// and check the study's basic calibration invariants hold even at tiny
// scale.
#include "core/study.h"

#include <gtest/gtest.h>

#include "analysis/overview.h"

namespace dm {
namespace {

class StudySmoke : public ::testing::Test {
 protected:
  static const core::Study& study() {
    static const core::Study instance{sim::ScenarioConfig::smoke()};
    return instance;
  }
};

TEST_F(StudySmoke, GeneratesRecords) {
  EXPECT_GT(study().record_count(), 1'000u);
  EXPECT_GT(study().trace().windows().size(), 100u);
}

TEST_F(StudySmoke, GroundTruthHasEpisodes) {
  EXPECT_GT(study().truth().episodes.size(), 10u);
}

TEST_F(StudySmoke, DetectsIncidentsInBothDirections) {
  const auto& incidents = study().detection().incidents;
  ASSERT_FALSE(incidents.empty());
  const auto mix = analysis::compute_attack_mix(incidents);
  EXPECT_GT(mix.inbound_total, 0u);
  EXPECT_GT(mix.outbound_total, 0u);
}

TEST_F(StudySmoke, OutboundDominates) {
  // §3.1: 64.9% of attacks are outbound. At smoke scale just require the
  // direction of the imbalance.
  const auto mix = analysis::compute_attack_mix(study().detection().incidents);
  EXPECT_GT(mix.outbound_total, mix.inbound_total);
}

TEST_F(StudySmoke, IncidentsAreWellFormed) {
  for (const auto& inc : study().detection().incidents) {
    EXPECT_LT(inc.start, inc.end);
    EXPECT_GE(inc.active_minutes, 1u);
    EXPECT_LE(static_cast<util::Minute>(inc.active_minutes), inc.duration());
    EXPECT_GT(inc.total_sampled_packets, 0u);
    EXPECT_GE(inc.total_sampled_packets, inc.peak_sampled_ppm);
  }
}

TEST_F(StudySmoke, DetectionRecallOnLoudGroundTruth) {
  // Every sufficiently loud ground-truth flood should yield at least one
  // overlapping detected incident of its type.
  const auto& incidents = study().detection().incidents;
  std::size_t loud = 0;
  std::size_t hit = 0;
  for (const auto& e : study().truth().episodes) {
    if (!sim::is_volume_based(e.type)) continue;
    if (e.peak_true_pps < 30'000.0) continue;
    if (e.duration() < 3) continue;
    ++loud;
    for (const auto& inc : incidents) {
      if (inc.type == e.type && inc.direction == e.direction &&
          inc.vip == e.vip && inc.start < e.end + 2 && e.start < inc.end + 2) {
        ++hit;
        break;
      }
    }
  }
  ASSERT_GT(loud, 0u);
  EXPECT_GE(static_cast<double>(hit) / static_cast<double>(loud), 0.8);
}

TEST_F(StudySmoke, Deterministic) {
  const core::Study again{sim::ScenarioConfig::smoke()};
  EXPECT_EQ(again.record_count(), study().record_count());
  EXPECT_EQ(again.detection().incidents.size(),
            study().detection().incidents.size());
  EXPECT_EQ(again.truth().episodes.size(), study().truth().episodes.size());
}

}  // namespace
}  // namespace dm
