// The columnar record store must be invisible to every consumer: a Study
// built on ColumnarRecords has to reproduce, byte for byte, what an
// independent array-of-structs reference produces — decoded records and
// directions against an in-test AoS pipeline (classify + stable canonical
// sort over the serial generator output), and windows, detections, and the
// four record-consuming exhibits across 1/2/8 threads and both pipeline
// shapes (fused and unfused).
#include <gtest/gtest.h>

#include <algorithm>
#include <iomanip>
#include <memory>
#include <sstream>
#include <tuple>
#include <vector>

#include "analysis/attribution.h"
#include "analysis/service_mix.h"
#include "analysis/signature.h"
#include "analysis/spoof_analysis.h"
#include "core/study.h"
#include "netflow/window_aggregator.h"
#include "sim/trace_generator.h"

namespace dm {
namespace {

sim::ScenarioConfig base_config() {
  auto config = sim::ScenarioConfig::smoke();
  config.seed = 31337;
  return config;
}

/// Independent AoS reference: serial generation, classification, and a
/// stable std::sort on the documented canonical key — no ColumnarRecords,
/// no shard merge, no parallel sort. The stable sort's preserved arrival
/// order is exactly the pipeline's arrival-index tie-break.
struct AosReference {
  std::vector<netflow::FlowRecord> records;
  std::vector<netflow::Direction> directions;
};

AosReference build_reference(const sim::Scenario& scenario) {
  exec::ThreadPool serial_pool(exec::workers_for(1));
  sim::TraceResult generated = sim::generate_trace(scenario, &serial_pool);

  AosReference ref;
  const auto& cloud = scenario.vips().cloud_space();
  for (const netflow::FlowRecord& r : generated.records) {
    if (const auto dir = netflow::classify(r, cloud)) {
      ref.records.push_back(r);
      ref.directions.push_back(*dir);
    }
  }

  std::vector<std::uint32_t> order(ref.records.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(
      order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        const netflow::OrientedFlow fa{&ref.records[a], ref.directions[a]};
        const netflow::OrientedFlow fb{&ref.records[b], ref.directions[b]};
        return std::make_tuple(fa.vip().value(),
                               static_cast<int>(ref.directions[a]),
                               ref.records[a].minute, fa.remote_ip().value()) <
               std::make_tuple(fb.vip().value(),
                               static_cast<int>(ref.directions[b]),
                               ref.records[b].minute, fb.remote_ip().value());
      });

  AosReference sorted;
  sorted.records.reserve(order.size());
  sorted.directions.reserve(order.size());
  for (const std::uint32_t i : order) {
    sorted.records.push_back(ref.records[i]);
    sorted.directions.push_back(ref.directions[i]);
  }
  return sorted;
}

void expect_matches_reference(const AosReference& ref,
                              const netflow::WindowedTrace& trace) {
  const auto records = trace.records();
  ASSERT_EQ(records.size(), ref.records.size());
  for (auto it = records.begin(); it != records.end(); ++it) {
    const std::size_t i = it.index();
    ASSERT_EQ(*it, ref.records[i]) << "record " << i;
    ASSERT_EQ(it.direction(), ref.directions[i]) << "direction " << i;
  }
}

// ---- Exhibit serialization: every field, full precision. Two studies
// agree on an exhibit iff they produce the same string.

std::ostringstream exhibit_stream() {
  std::ostringstream os;
  os << std::setprecision(17);
  return os;
}

std::string dump_incident_remotes(const core::Study& study) {
  auto os = exhibit_stream();
  const auto& incidents = study.detection().incidents;
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    os << "incident " << i << ":";
    for (const auto& rc : analysis::incident_remotes(
             study.trace(), incidents[i], &study.blacklist())) {
      os << " " << rc.remote.value() << "=" << rc.packets;
    }
    os << "\n";
  }
  return os.str();
}

std::string dump_service_tables(const core::Study& study) {
  auto os = exhibit_stream();
  const auto table = analysis::compute_service_attack_table(
      study.trace(), study.detection().minutes, study.detection().incidents);
  os << "victims=" << table.victim_vips << "\n";
  for (std::size_t s = 0; s < analysis::kReportedServiceCount; ++s) {
    os << "svc" << s << " share=" << table.hosting_share[s] << " cells=";
    for (const double c : table.cell[s]) os << c << ",";
    os << "\n";
  }
  const auto targets = analysis::compute_outbound_app_targets(
      study.trace(), study.detection().incidents);
  os << "attacking=" << targets.attacking_vips
     << " web=" << targets.web_share << " per_svc=";
  for (const auto v : targets.vips_per_service) os << v << ",";
  os << "\n";
  return os.str();
}

std::string dump_signatures(const core::Study& study) {
  auto os = exhibit_stream();
  for (const netflow::IPv4 vip : study.trace().vips()) {
    os << "vip " << vip.value() << ":\n";
    for (const auto& rule : analysis::extract_signatures(
             study.trace(), study.detection().incidents, vip, {},
             &study.blacklist())) {
      os << "  " << analysis::to_string(rule) << " incidents="
         << rule.incidents << " share=" << rule.packet_share << "\n";
    }
  }
  return os.str();
}

std::string dump_spoofing(const core::Study& study) {
  auto os = exhibit_stream();
  const auto result = analysis::analyze_spoofing(
      study.trace(), study.detection().incidents, &study.blacklist());
  for (const auto& v : result.verdicts) {
    os << v.incident_index << " spoofed=" << v.spoofed
       << " n=" << v.test.n << " A2=" << v.test.statistic
       << " p=" << v.test.p_value << "\n";
  }
  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    os << "type" << t << " frac=" << result.spoofed_fraction[t]
       << " tested=" << result.tested[t] << "\n";
  }
  return os.str();
}

struct Exhibits {
  std::string remotes;
  std::string services;
  std::string signatures;
  std::string spoofing;
};

Exhibits exhibits_of(const core::Study& study) {
  return {dump_incident_remotes(study), dump_service_tables(study),
          dump_signatures(study), dump_spoofing(study)};
}

auto window_tuple(const netflow::VipMinuteStats& w) {
  return std::make_tuple(
      w.vip.value(), w.minute, w.direction, w.packets, w.bytes, w.tcp_packets,
      w.udp_packets, w.icmp_packets, w.ipencap_packets, w.syn_packets,
      w.null_scan_packets, w.xmas_scan_packets, w.bare_rst_packets,
      w.dns_response_packets, w.flows, w.unique_remote_ips, w.smtp_flows,
      w.unique_smtp_remotes, w.remote_admin_flows, w.unique_admin_remotes,
      w.sql_flows, w.smtp_packets, w.admin_packets, w.sql_packets,
      w.blacklist_flows, w.unique_blacklist_remotes, w.blacklist_packets,
      w.first_record, w.last_record);
}

auto incident_tuple(const detect::AttackIncident& a) {
  return std::make_tuple(a.vip.value(), a.direction, a.type, a.start, a.end,
                         a.active_minutes, a.total_sampled_packets,
                         a.peak_sampled_ppm, a.peak_unique_remotes,
                         a.ramp_up_minutes);
}

void expect_same_study(const core::Study& base, const Exhibits& base_exhibits,
                       const core::Study& other) {
  ASSERT_EQ(base.record_count(), other.record_count());

  const auto& bw = base.trace().windows();
  const auto& ow = other.trace().windows();
  ASSERT_EQ(bw.size(), ow.size());
  for (std::size_t i = 0; i < bw.size(); ++i) {
    ASSERT_EQ(window_tuple(bw[i]), window_tuple(ow[i])) << "window " << i;
  }

  const auto& bi = base.detection().incidents;
  const auto& oi = other.detection().incidents;
  ASSERT_EQ(bi.size(), oi.size());
  for (std::size_t i = 0; i < bi.size(); ++i) {
    ASSERT_EQ(incident_tuple(bi[i]), incident_tuple(oi[i])) << "incident " << i;
  }

  const Exhibits other_exhibits = exhibits_of(other);
  EXPECT_EQ(base_exhibits.remotes, other_exhibits.remotes);
  EXPECT_EQ(base_exhibits.services, other_exhibits.services);
  EXPECT_EQ(base_exhibits.signatures, other_exhibits.signatures);
  EXPECT_EQ(base_exhibits.spoofing, other_exhibits.spoofing);
}

TEST(ColumnarEquivalence, StudyMatchesAosReferenceAndIsThreadInvariant) {
  auto serial_config = base_config();
  serial_config.thread_count = 1;
  serial_config.fuse_pipeline = true;
  const core::Study serial(serial_config);

  // The scenario must actually exercise the machinery under test.
  ASSERT_GT(serial.record_count(), 0u);
  ASSERT_FALSE(serial.detection().incidents.empty());

  // Decoded records + directions vs the independent AoS pipeline.
  const AosReference reference = build_reference(serial.scenario());
  expect_matches_reference(reference, serial.trace());

  const Exhibits serial_exhibits = exhibits_of(serial);
  ASSERT_FALSE(serial_exhibits.remotes.empty());
  ASSERT_FALSE(serial_exhibits.spoofing.empty());

  for (unsigned threads : {2u, 8u}) {
    SCOPED_TRACE("thread_count=" + std::to_string(threads));
    auto config = base_config();
    config.thread_count = threads;
    config.fuse_pipeline = true;
    const core::Study parallel(config);
    expect_matches_reference(reference, parallel.trace());
    expect_same_study(serial, serial_exhibits, parallel);
  }

  // The unfused pipeline shape lands on the same store contents too.
  SCOPED_TRACE("unfused");
  auto unfused_config = base_config();
  unfused_config.thread_count = 2;
  unfused_config.fuse_pipeline = false;
  const core::Study unfused(unfused_config);
  expect_matches_reference(reference, unfused.trace());
  expect_same_study(serial, serial_exhibits, unfused);
}

}  // namespace
}  // namespace dm
