// The columnar record store must be invisible to every consumer: a Study
// built on ColumnarRecords has to reproduce, byte for byte, what an
// independent array-of-structs reference produces — decoded records and
// directions against an in-test AoS pipeline (classify + stable canonical
// sort over the serial generator output), and windows, detections, and the
// four record-consuming exhibits across 1/2/8 threads and both pipeline
// shapes (fused and unfused). Exhibit serialization and study comparison
// live in study_exhibits.h, shared with the spill-equivalence suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/study.h"
#include "netflow/window_aggregator.h"
#include "sim/trace_generator.h"
#include "integration/study_exhibits.h"

namespace dm {
namespace {

using test_support::Exhibits;
using test_support::exhibits_of;
using test_support::expect_same_study;

sim::ScenarioConfig base_config() {
  auto config = sim::ScenarioConfig::smoke();
  config.seed = 31337;
  return config;
}

/// Independent AoS reference: serial generation, classification, and a
/// stable std::sort on the documented canonical key — no ColumnarRecords,
/// no shard merge, no parallel sort. The stable sort's preserved arrival
/// order is exactly the pipeline's arrival-index tie-break.
struct AosReference {
  std::vector<netflow::FlowRecord> records;
  std::vector<netflow::Direction> directions;
};

AosReference build_reference(const sim::Scenario& scenario) {
  exec::ThreadPool serial_pool(exec::workers_for(1));
  sim::TraceResult generated = sim::generate_trace(scenario, &serial_pool);

  AosReference ref;
  const auto& cloud = scenario.vips().cloud_space();
  for (const netflow::FlowRecord& r : generated.records) {
    if (const auto dir = netflow::classify(r, cloud)) {
      ref.records.push_back(r);
      ref.directions.push_back(*dir);
    }
  }

  std::vector<std::uint32_t> order(ref.records.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(
      order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        const netflow::OrientedFlow fa{&ref.records[a], ref.directions[a]};
        const netflow::OrientedFlow fb{&ref.records[b], ref.directions[b]};
        return std::make_tuple(fa.vip().value(),
                               static_cast<int>(ref.directions[a]),
                               ref.records[a].minute, fa.remote_ip().value()) <
               std::make_tuple(fb.vip().value(),
                               static_cast<int>(ref.directions[b]),
                               ref.records[b].minute, fb.remote_ip().value());
      });

  AosReference sorted;
  sorted.records.reserve(order.size());
  sorted.directions.reserve(order.size());
  for (const std::uint32_t i : order) {
    sorted.records.push_back(ref.records[i]);
    sorted.directions.push_back(ref.directions[i]);
  }
  return sorted;
}

void expect_matches_reference(const AosReference& ref,
                              const netflow::WindowedTrace& trace) {
  const auto records = trace.records();
  ASSERT_EQ(records.size(), ref.records.size());
  for (auto it = records.begin(); it != records.end(); ++it) {
    const std::size_t i = it.index();
    ASSERT_EQ(*it, ref.records[i]) << "record " << i;
    ASSERT_EQ(it.direction(), ref.directions[i]) << "direction " << i;
  }
}

TEST(ColumnarEquivalence, StudyMatchesAosReferenceAndIsThreadInvariant) {
  auto serial_config = base_config();
  serial_config.thread_count = 1;
  serial_config.fuse_pipeline = true;
  const core::Study serial(serial_config);

  // The scenario must actually exercise the machinery under test.
  ASSERT_GT(serial.record_count(), 0u);
  ASSERT_FALSE(serial.detection().incidents.empty());

  // Decoded records + directions vs the independent AoS pipeline.
  const AosReference reference = build_reference(serial.scenario());
  expect_matches_reference(reference, serial.trace());

  const Exhibits serial_exhibits = exhibits_of(serial);
  ASSERT_FALSE(serial_exhibits.remotes.empty());
  ASSERT_FALSE(serial_exhibits.spoofing.empty());

  for (unsigned threads : {2u, 8u}) {
    SCOPED_TRACE("thread_count=" + std::to_string(threads));
    auto config = base_config();
    config.thread_count = threads;
    config.fuse_pipeline = true;
    const core::Study parallel(config);
    expect_matches_reference(reference, parallel.trace());
    expect_same_study(serial, serial_exhibits, parallel);
  }

  // The unfused pipeline shape lands on the same store contents too.
  SCOPED_TRACE("unfused");
  auto unfused_config = base_config();
  unfused_config.thread_count = 2;
  unfused_config.fuse_pipeline = false;
  const core::Study unfused(unfused_config);
  expect_matches_reference(reference, unfused.trace());
  expect_same_study(serial, serial_exhibits, unfused);
}

}  // namespace
}  // namespace dm
