// Study-level differential verification of the block decode pipeline: the
// production path now aggregates and detects through DecodedBlocks, so
// (a) full studies must stay tuple-identical across thread counts in both
// resident and spill mode — the block pipeline inherits the determinism
// contract — and (b) draining a finished study's RecordStore through
// BlockCursor must be field-for-field identical to the scalar Cursor, the
// retained differential oracle, including across spill-segment boundaries
// and over clipped sub-ranges.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>

#include "core/study.h"
#include "integration/study_exhibits.h"
#include "netflow/columnar_records.h"
#include "netflow/segment_store.h"
#include "util/rng.h"

namespace dm {
namespace {

namespace fs = std::filesystem;

using test_support::Exhibits;
using test_support::exhibits_of;
using test_support::expect_same_study;

sim::ScenarioConfig base_config() {
  auto config = sim::ScenarioConfig::smoke();
  config.seed = 31337;
  return config;
}

fs::path scratch_dir(const std::string& suffix) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("dm_block_eq_" + std::to_string(::getpid()) + "_" + suffix);
  fs::remove_all(dir);
  return dir;
}

/// Drains `store.blocks(first, last)` against the scalar range — every
/// decoded field, the rebased base_index, and block-capacity bounds.
void expect_blocks_match_range(const netflow::RecordStore& store,
                               std::size_t first, std::size_t last) {
  auto blocks = store.blocks(first, last);
  auto range = store.range(first, last);
  auto it = range.begin();
  netflow::DecodedBlock block;
  std::size_t i = first;
  while (blocks.next(block)) {
    ASSERT_GT(block.count, 0u);
    ASSERT_LE(block.count, +netflow::DecodedBlock::kCapacity);
    ASSERT_EQ(block.base_index, i);
    for (std::size_t k = 0; k < block.count; ++k, ++i, ++it) {
      ASSERT_TRUE(it != range.end()) << "blocks decoded past the range";
      const netflow::FlowRecord& r = *it;
      const auto dir = static_cast<netflow::Direction>(block.direction[k]);
      ASSERT_EQ(dir, it.direction()) << "record " << i;
      const netflow::IPv4 vip =
          dir == netflow::Direction::kInbound ? r.dst_ip : r.src_ip;
      const netflow::IPv4 remote =
          dir == netflow::Direction::kInbound ? r.src_ip : r.dst_ip;
      ASSERT_EQ(block.vip[k], vip.value()) << "record " << i;
      ASSERT_EQ(block.remote[k], remote.value()) << "record " << i;
      ASSERT_EQ(block.minute[k], r.minute) << "record " << i;
      ASSERT_EQ(block.src_port[k], r.src_port) << "record " << i;
      ASSERT_EQ(block.dst_port[k], r.dst_port) << "record " << i;
      ASSERT_EQ(static_cast<netflow::Protocol>(block.protocol[k]), r.protocol)
          << "record " << i;
      ASSERT_EQ(static_cast<netflow::TcpFlags>(block.tcp_flags[k]),
                r.tcp_flags)
          << "record " << i;
      ASSERT_EQ(block.packets[k], r.packets) << "record " << i;
      ASSERT_EQ(block.bytes[k], r.bytes) << "record " << i;
    }
  }
  EXPECT_EQ(i, last);
  EXPECT_TRUE(it == range.end()) << "scalar range has records blocks missed";
}

TEST(BlockEquivalence, StudyBlocksMatchScalarAcrossThreadsAndSpill) {
  auto baseline_config = base_config();
  baseline_config.thread_count = 1;
  const core::Study baseline(baseline_config);
  ASSERT_GT(baseline.record_count(), 0u);
  ASSERT_FALSE(baseline.detection().incidents.empty());
  const Exhibits baseline_exhibits = exhibits_of(baseline);

  for (const bool spill : {false, true}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(std::string(spill ? "spill" : "resident") +
                   " threads=" + std::to_string(threads));
      const fs::path dir = scratch_dir((spill ? "s" : "r") + std::string("_t") +
                                       std::to_string(threads));
      auto config = base_config();
      config.thread_count = threads;
      if (spill) {
        // Floor the seal threshold so the smoke trace spans segments.
        config.spill.directory = dir.string();
        config.spill.segment_bytes = 1ull << 20;
        config.spill.ram_budget_bytes = 2ull << 20;
      }
      const core::Study study(config);
      const netflow::RecordStore& store = study.trace().store();
      ASSERT_EQ(store.spilled(), spill);

      // The study the block pipeline produced must match the baseline's
      // windows, incidents, and exhibits tuple-for-tuple.
      expect_same_study(baseline, baseline_exhibits, study);

      // And the store itself must block-decode identically to the scalar
      // cursor: full scan plus ranges that start mid-run, end mid-block,
      // and (in spill mode) straddle segment boundaries.
      const std::size_t n = store.size();
      expect_blocks_match_range(store, 0, n);
      util::Rng rng(903 + threads);
      for (int round = 0; round < 12; ++round) {
        const std::size_t first = rng.below(n + 1);
        const std::size_t last = first + rng.below(n + 1 - first);
        SCOPED_TRACE("range [" + std::to_string(first) + ", " +
                     std::to_string(last) + ")");
        expect_blocks_match_range(store, first, last);
      }
      if (spill) {
        // Ranges pinned to segment seams: one record either side of each
        // boundary, where BlockCursor must end a block early and remap.
        const auto& segs = store.segments().segments();
        std::size_t boundary = 0;
        for (std::size_t s = 0; s + 1 < segs.size(); ++s) {
          boundary += static_cast<std::size_t>(segs[s].records);
          SCOPED_TRACE("segment boundary " + std::to_string(boundary));
          expect_blocks_match_range(store, boundary - 1,
                                    std::min(n, boundary + 1));
          expect_blocks_match_range(store, boundary, std::min(n, boundary + 1));
        }
      }
      fs::remove_all(dir);
    }
  }
}

TEST(BlockEquivalence, EmptyAndDegenerateRanges) {
  auto config = base_config();
  config.thread_count = 1;
  const core::Study study(config);
  const netflow::RecordStore& store = study.trace().store();
  const std::size_t n = store.size();

  netflow::DecodedBlock block;
  auto empty_mid = store.blocks(n / 2, n / 2);
  EXPECT_FALSE(empty_mid.next(block));
  EXPECT_EQ(block.count, 0u);
  auto empty_end = store.blocks(n, n);
  EXPECT_FALSE(empty_end.next(block));
  expect_blocks_match_range(store, n - 1, n);  // single final record
}

}  // namespace
}  // namespace dm
