// Degraded-feed fault matrix: every fault plan in the matrix must leave the
// system crash-free (runs under the ASan/UBSan CI stage), salvage must
// recover everything outside the damaged regions, and mild degradation must
// only mildly perturb the exhibits (bounded incident drift).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "detect/stream.h"
#include "fault/fault.h"
#include "netflow/trace_io.h"
#include "sim/trace_generator.h"

namespace dm {
namespace {

using detect::AttackIncident;
using detect::StreamConfig;
using detect::StreamMonitor;
using netflow::FlowRecord;

struct Scenario {
  std::vector<FlowRecord> feed;  // time-ordered
  netflow::PrefixSet cloud;
  const netflow::PrefixSet* blacklist = nullptr;
};

const Scenario& scenario() {
  static const Scenario s = [] {
    auto config = sim::ScenarioConfig::smoke();
    config.vips.vip_count = 100;
    config.days = 1;
    config.seed = 4242;
    const sim::Scenario scn(config);
    Scenario out;
    out.feed = sim::generate_trace(scn).records;
    std::stable_sort(out.feed.begin(), out.feed.end(),
                     [](const FlowRecord& a, const FlowRecord& b) {
                       return a.minute < b.minute;
                     });
    out.cloud = scn.vips().cloud_space();
    return out;
  }();
  return s;
}

std::size_t run_monitor(const std::vector<FlowRecord>& feed,
                        StreamConfig stream) {
  std::vector<AttackIncident> incidents;
  StreamMonitor monitor(
      scenario().cloud, nullptr, detect::DetectionConfig{},
      detect::TimeoutTable::paper(), nullptr,
      [&incidents](const AttackIncident& inc) { incidents.push_back(inc); },
      stream);
  for (const auto& r : feed) monitor.ingest(r);
  monitor.finish();
  return incidents.size();
}

/// The smallest reorder lag that makes `feed` late-free.
util::Minute required_lag(const std::vector<FlowRecord>& feed) {
  util::Minute lag = 0;
  util::Minute max_seen = feed.empty() ? 0 : feed.front().minute;
  for (const auto& r : feed) {
    max_seen = std::max(max_seen, r.minute);
    lag = std::max(lag, max_seen - r.minute);
  }
  return lag;
}

TEST(FaultMatrix, ByteCorruptionMatrixNeverCrashesSalvage) {
  std::stringstream buffer;
  {
    netflow::TraceWriter writer(buffer, 4096);
    writer.write_all(scenario().feed);
    writer.finish();
  }
  const std::string clean_str = buffer.str();
  const std::vector<std::uint8_t> clean(clean_str.begin(), clean_str.end());

  const fault::BytePlan matrix[] = {
      {.bit_flips = 1},
      {.bit_flips = 200},
      {.corrupt_blocks = 1},
      {.corrupt_blocks = 5},
      {.truncate_blocks = 2},
      {.truncate_tail = true},
      {.bit_flips = 16, .corrupt_blocks = 3, .truncate_blocks = 2,
       .truncate_tail = true},
  };
  for (std::size_t i = 0; i < std::size(matrix); ++i) {
    SCOPED_TRACE("byte plan " + std::to_string(i));
    auto bytes = clean;
    fault::FaultInjector(1000 + i).corrupt(bytes, matrix[i]);
    std::stringstream in(std::string(bytes.begin(), bytes.end()));
    netflow::TraceReader reader(in, netflow::ReadMode::kSalvage);
    const auto records = reader.read_all();
    EXPECT_LE(records.size(), scenario().feed.size());
    EXPECT_EQ(records.size(), reader.report().records_recovered);
    EXPECT_LE(reader.report().bytes_lost(), bytes.size());
  }
}

TEST(FaultMatrix, RecordDegradationMatrixNeverCrashesMonitor) {
  const fault::RecordPlan matrix[] = {
      {.duplicate_prob = 0.5},
      {.reorder_window = 4096},
      {.loss_bursts = 8, .loss_burst_minutes = 30},
      {.stuck_clock_prob = 0.5},
      {.duplicate_prob = 0.2, .reorder_window = 512, .loss_bursts = 3,
       .loss_burst_minutes = 10, .stuck_clock_prob = 0.1},
  };
  for (std::size_t i = 0; i < std::size(matrix); ++i) {
    SCOPED_TRACE("record plan " + std::to_string(i));
    const auto degraded =
        fault::FaultInjector(2000 + i).degrade(scenario().feed, matrix[i]);
    // Run both strict (late records dropped) and lag-tolerant.
    run_monitor(degraded, StreamConfig{});
    StreamConfig tolerant;
    tolerant.reorder_lag = required_lag(degraded);
    tolerant.suppress_duplicates = true;
    run_monitor(degraded, tolerant);
  }
}

TEST(FaultMatrix, MildDegradationBoundsIncidentDrift) {
  const std::size_t clean_incidents = run_monitor(scenario().feed, {});
  ASSERT_GT(clean_incidents, 0u);

  // Mild, realistic degradation: ~1% duplicates, slight reordering, one
  // short outage. Exhibits must survive within a bounded drift.
  fault::RecordPlan plan;
  plan.duplicate_prob = 0.01;
  plan.reorder_window = 64;
  plan.loss_bursts = 1;
  plan.loss_burst_minutes = 5;
  fault::RecordDamage damage;
  const auto degraded =
      fault::FaultInjector(77).degrade(scenario().feed, plan, &damage);
  EXPECT_GT(damage.dropped, 0u);

  StreamConfig stream;
  stream.reorder_lag = required_lag(degraded);
  stream.suppress_duplicates = true;
  const std::size_t degraded_incidents = run_monitor(degraded, stream);

  // The 5-minute outage can split or erase a handful of incidents and the
  // post-gap baseline handling can merge others; anything beyond ±30% (or
  // ±3 for tiny counts) means degradation is distorting detection, not
  // perturbing it.
  const double lo = 0.7 * static_cast<double>(clean_incidents) - 3.0;
  const double hi = 1.3 * static_cast<double>(clean_incidents) + 3.0;
  EXPECT_GE(static_cast<double>(degraded_incidents), lo)
      << "clean=" << clean_incidents << " degraded=" << degraded_incidents;
  EXPECT_LE(static_cast<double>(degraded_incidents), hi)
      << "clean=" << clean_incidents << " degraded=" << degraded_incidents;
}

TEST(FaultMatrix, SalvagedTraceFeedsTheMonitorEndToEnd) {
  // Full degraded pipeline: serialize, corrupt two blocks, salvage, detect.
  // The monitor must run cleanly on salvage output and find most of what
  // the clean trace yields.
  std::stringstream buffer;
  {
    netflow::TraceWriter writer(buffer, 4096);
    writer.write_all(scenario().feed);
    writer.finish();
  }
  const std::string clean_str = buffer.str();
  std::vector<std::uint8_t> bytes(clean_str.begin(), clean_str.end());
  fault::BytePlan plan;
  plan.corrupt_blocks = 2;
  fault::FaultInjector(9).corrupt(bytes, plan);

  std::stringstream in(std::string(bytes.begin(), bytes.end()));
  netflow::TraceReader reader(in, netflow::ReadMode::kSalvage);
  auto salvaged = reader.read_all();
  EXPECT_FALSE(reader.report().clean());
  EXPECT_LT(salvaged.size(), scenario().feed.size());

  std::stable_sort(salvaged.begin(), salvaged.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.minute < b.minute;
                   });
  const std::size_t clean_incidents = run_monitor(scenario().feed, {});
  const std::size_t salvaged_incidents = run_monitor(salvaged, {});
  EXPECT_GE(static_cast<double>(salvaged_incidents),
            0.5 * static_cast<double>(clean_incidents));
}

}  // namespace
}  // namespace dm
