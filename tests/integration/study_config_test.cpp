// Study behaviour under configuration variations: sampling rates, disabled
// scripted events, custom detection settings.
#include <gtest/gtest.h>

#include "core/study.h"

namespace dm {
namespace {

sim::ScenarioConfig tiny() {
  auto config = sim::ScenarioConfig::smoke();
  config.vips.vip_count = 80;
  config.days = 1;
  config.seed = 31337;
  return config;
}

TEST(StudyConfig, DenserSamplingSeesMore) {
  auto coarse_config = tiny();
  coarse_config.sampling = 16384;
  auto fine_config = tiny();
  fine_config.sampling = 1024;
  const core::Study coarse(coarse_config);
  const core::Study fine(fine_config);
  EXPECT_GT(fine.record_count(), coarse.record_count() * 4);
}

TEST(StudyConfig, ScriptedEventsCanBeDisabled) {
  auto with = tiny();
  auto without = tiny();
  without.include_case_study = false;
  without.include_spam_eruption = false;
  without.include_subnet_scan = false;
  without.include_dns_server_case = false;
  without.include_romania_barrage = false;
  without.include_serial_attacker = false;
  const core::Study a(with);
  const core::Study b(without);
  EXPECT_GT(a.truth().episodes.size(), b.truth().episodes.size() + 50);
}

TEST(StudyConfig, ZeroAttackRatesYieldNoGenericSessions) {
  auto config = tiny();
  config.inbound_sessions_per_vip_day = 0.0;
  config.outbound_sessions_per_vip_day = 0.0;
  config.include_case_study = false;
  config.include_spam_eruption = false;
  config.include_subnet_scan = false;
  config.include_dns_server_case = false;
  config.include_romania_barrage = false;
  config.include_serial_attacker = false;
  const core::Study study(config);
  EXPECT_TRUE(study.truth().episodes.empty());
  // Benign-only trace: the conservative detectors stay almost silent.
  EXPECT_LT(study.detection().incidents.size(), 25u);
}

TEST(StudyConfig, HigherThresholdDetectsLess) {
  detect::DetectionConfig strict;
  strict.volume_change_threshold = 1'000.0;
  strict.brute_force_unique_ips = 100.0;
  strict.brute_force_connections = 300.0;
  strict.spam_unique_ips = 200.0;
  strict.sql_connections = 300.0;
  const core::Study loose(tiny());
  const core::Study tight(tiny(), strict);
  EXPECT_LT(tight.detection().incidents.size(),
            loose.detection().incidents.size());
}

TEST(StudyConfig, BlacklistFeedsTdsDetection) {
  const core::Study study(tiny());
  // Every window with blacklist contact involves a genuine TDS host.
  for (const auto& w : study.trace().windows()) {
    if (w.blacklist_flows == 0) continue;
    bool found = false;
    for (const auto& r : study.trace().records_of(w)) {
      const netflow::OrientedFlow f{&r, w.direction};
      if (study.blacklist().contains(f.remote_ip())) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(StudyConfig, SamplingDenominatorPropagates) {
  auto config = tiny();
  config.sampling = 2048;
  const core::Study study(config);
  EXPECT_EQ(study.sampling(), 2048u);
}

}  // namespace
}  // namespace dm
