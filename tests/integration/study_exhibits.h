// Shared study-equivalence helpers for the integration suites: full-field
// exhibit serialization (every record-consuming analysis, full precision)
// and tuple-wise window/incident comparison. Two studies are "the same"
// exactly when expect_same_study passes — this is the bar both the
// columnar-equivalence and spill-equivalence suites hold the pipeline to.
#pragma once

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>
#include <tuple>

#include "analysis/attribution.h"
#include "analysis/service_mix.h"
#include "analysis/signature.h"
#include "analysis/spoof_analysis.h"
#include "core/study.h"

namespace dm::test_support {

// ---- Exhibit serialization: every field, full precision. Two studies
// agree on an exhibit iff they produce the same string.

inline std::ostringstream exhibit_stream() {
  std::ostringstream os;
  os << std::setprecision(17);
  return os;
}

inline std::string dump_incident_remotes(const core::Study& study) {
  auto os = exhibit_stream();
  const auto& incidents = study.detection().incidents;
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    os << "incident " << i << ":";
    for (const auto& rc : analysis::incident_remotes(
             study.trace(), incidents[i], &study.blacklist())) {
      os << " " << rc.remote.value() << "=" << rc.packets;
    }
    os << "\n";
  }
  return os.str();
}

inline std::string dump_service_tables(const core::Study& study) {
  auto os = exhibit_stream();
  const auto table = analysis::compute_service_attack_table(
      study.trace(), study.detection().minutes, study.detection().incidents);
  os << "victims=" << table.victim_vips << "\n";
  for (std::size_t s = 0; s < analysis::kReportedServiceCount; ++s) {
    os << "svc" << s << " share=" << table.hosting_share[s] << " cells=";
    for (const double c : table.cell[s]) os << c << ",";
    os << "\n";
  }
  const auto targets = analysis::compute_outbound_app_targets(
      study.trace(), study.detection().incidents);
  os << "attacking=" << targets.attacking_vips << " web=" << targets.web_share
     << " per_svc=";
  for (const auto v : targets.vips_per_service) os << v << ",";
  os << "\n";
  return os.str();
}

inline std::string dump_signatures(const core::Study& study) {
  auto os = exhibit_stream();
  for (const netflow::IPv4 vip : study.trace().vips()) {
    os << "vip " << vip.value() << ":\n";
    for (const auto& rule : analysis::extract_signatures(
             study.trace(), study.detection().incidents, vip, {},
             &study.blacklist())) {
      os << "  " << analysis::to_string(rule) << " incidents="
         << rule.incidents << " share=" << rule.packet_share << "\n";
    }
  }
  return os.str();
}

inline std::string dump_spoofing(const core::Study& study) {
  auto os = exhibit_stream();
  const auto result = analysis::analyze_spoofing(
      study.trace(), study.detection().incidents, &study.blacklist());
  for (const auto& v : result.verdicts) {
    os << v.incident_index << " spoofed=" << v.spoofed << " n=" << v.test.n
       << " A2=" << v.test.statistic << " p=" << v.test.p_value << "\n";
  }
  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    os << "type" << t << " frac=" << result.spoofed_fraction[t]
       << " tested=" << result.tested[t] << "\n";
  }
  return os.str();
}

struct Exhibits {
  std::string remotes;
  std::string services;
  std::string signatures;
  std::string spoofing;
};

inline Exhibits exhibits_of(const core::Study& study) {
  return {dump_incident_remotes(study), dump_service_tables(study),
          dump_signatures(study), dump_spoofing(study)};
}

inline auto window_tuple(const netflow::VipMinuteStats& w) {
  return std::make_tuple(
      w.vip.value(), w.minute, w.direction, w.packets, w.bytes, w.tcp_packets,
      w.udp_packets, w.icmp_packets, w.ipencap_packets, w.syn_packets,
      w.null_scan_packets, w.xmas_scan_packets, w.bare_rst_packets,
      w.dns_response_packets, w.flows, w.unique_remote_ips, w.smtp_flows,
      w.unique_smtp_remotes, w.remote_admin_flows, w.unique_admin_remotes,
      w.sql_flows, w.smtp_packets, w.admin_packets, w.sql_packets,
      w.blacklist_flows, w.unique_blacklist_remotes, w.blacklist_packets,
      w.first_record, w.last_record);
}

inline auto incident_tuple(const detect::AttackIncident& a) {
  return std::make_tuple(a.vip.value(), a.direction, a.type, a.start, a.end,
                         a.active_minutes, a.total_sampled_packets,
                         a.peak_sampled_ppm, a.peak_unique_remotes,
                         a.ramp_up_minutes);
}

inline void expect_same_study(const core::Study& base,
                              const Exhibits& base_exhibits,
                              const core::Study& other) {
  ASSERT_EQ(base.record_count(), other.record_count());

  const auto& bw = base.trace().windows();
  const auto& ow = other.trace().windows();
  ASSERT_EQ(bw.size(), ow.size());
  for (std::size_t i = 0; i < bw.size(); ++i) {
    ASSERT_EQ(window_tuple(bw[i]), window_tuple(ow[i])) << "window " << i;
  }

  const auto& bi = base.detection().incidents;
  const auto& oi = other.detection().incidents;
  ASSERT_EQ(bi.size(), oi.size());
  for (std::size_t i = 0; i < bi.size(); ++i) {
    ASSERT_EQ(incident_tuple(bi[i]), incident_tuple(oi[i])) << "incident " << i;
  }

  const Exhibits other_exhibits = exhibits_of(other);
  EXPECT_EQ(base_exhibits.remotes, other_exhibits.remotes);
  EXPECT_EQ(base_exhibits.services, other_exhibits.services);
  EXPECT_EQ(base_exhibits.signatures, other_exhibits.signatures);
  EXPECT_EQ(base_exhibits.spoofing, other_exhibits.spoofing);
}

}  // namespace dm::test_support
