// Per-attack-type end-to-end coverage: for every type and direction, a loud
// hand-planted episode must come back out of the pipeline as an incident of
// the same type, on the right VIP, with sensible attribution.
#include <gtest/gtest.h>

#include "detect/pipeline.h"
#include "netflow/window_aggregator.h"
#include "sim/attack_traffic.h"
#include "sim/trace_generator.h"

namespace dm {
namespace {

using netflow::Direction;
using sim::AttackType;

struct Case {
  AttackType type;
  Direction direction;
};

class PerTypeCoverage : public ::testing::TestWithParam<Case> {
 protected:
  static const sim::Scenario& scenario() {
    static const sim::Scenario s{[] {
      auto config = sim::ScenarioConfig::smoke();
      config.vips.vip_count = 50;
      config.days = 1;
      config.seed = 1234;
      return config;
    }()};
    return s;
  }
};

TEST_P(PerTypeCoverage, LoudEpisodeDetectedAsItsType) {
  const auto [type, direction] = GetParam();

  // Build an explicit, loud episode for this type.
  sim::AttackEpisode e;
  e.type = type;
  e.direction = direction;
  e.vip = scenario().vips().all()[7].vip;
  e.start = 200;
  e.end = 215;
  e.ramp_up_minutes = 1.0;
  e.target_port = 80;
  switch (type) {
    case AttackType::kSynFlood:
    case AttackType::kUdpFlood:
    case AttackType::kIcmpFlood:
      e.peak_true_pps = 100'000.0;
      break;
    case AttackType::kDnsReflection:
      e.peak_true_pps = 80'000.0;
      break;
    case AttackType::kSpam:
      e.peak_true_pps = 20'000.0;
      e.target_port = netflow::ports::kSmtp;
      break;
    case AttackType::kBruteForce:
      e.peak_true_pps = 30'000.0;
      e.target_port = netflow::ports::kSsh;
      break;
    case AttackType::kSqlInjection:
      e.peak_true_pps = 20'000.0;
      e.target_port = netflow::ports::kSqlServer;
      break;
    case AttackType::kPortScan:
      e.peak_true_pps = 20'000.0;
      e.scan_kind = sim::PortScanKind::kNull;
      e.target_port = 0;
      break;
    case AttackType::kTds:
      e.peak_true_pps = 20'000.0;
      e.target_port = 0;
      break;
  }
  util::Rng host_rng(5);
  const std::size_t hosts = type == AttackType::kPortScan ? 3 : 200;
  for (std::size_t i = 0; i < hosts; ++i) {
    e.remote_hosts.push_back(
        type == AttackType::kTds
            ? scenario().tds().random_host(host_rng)
            : scenario().ases().host_in_class(cloud::AsClass::kSmallIsp,
                                              host_rng));
  }

  // Emit its traffic (no benign noise needed for this check).
  const sim::AttackTrafficModel model(scenario().ases(), scenario().tds());
  const netflow::PacketSampler sampler(4096);
  util::Rng rng(99);
  std::vector<netflow::FlowRecord> records;
  for (util::Minute m = e.start; m < e.end; ++m) {
    model.emit_minute(e, m, sampler, rng, records);
  }
  ASSERT_FALSE(records.empty());

  const auto trace = netflow::aggregate_windows(
      std::move(records), scenario().vips().cloud_space(),
      &scenario().tds().as_prefix_set());
  const auto result = detect::DetectionPipeline{}.run(trace);

  const detect::AttackIncident* found = nullptr;
  for (const auto& inc : result.incidents) {
    if (inc.type == type && inc.direction == direction && inc.vip == e.vip) {
      found = &inc;
      break;
    }
  }
  ASSERT_NE(found, nullptr)
      << sim::to_string(type) << " " << netflow::to_string(direction);
  EXPECT_GE(found->start, e.start);
  EXPECT_LE(found->end, e.end + 1);
  EXPECT_GE(found->active_minutes, 10u);
  EXPECT_GT(found->total_sampled_packets, 100u);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (AttackType type : sim::kAllAttackTypes) {
    cases.push_back({type, Direction::kInbound});
    cases.push_back({type, Direction::kOutbound});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name(sim::to_string(info.param.type));
  std::erase(name, '-');  // gtest parameter names must be alphanumeric
  return name + (info.param.direction == Direction::kInbound ? "_in" : "_out");
}

INSTANTIATE_TEST_SUITE_P(AllTypes, PerTypeCoverage,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace dm
