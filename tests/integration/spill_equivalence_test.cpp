// Differential spill-vs-resident verification (DESIGN.md §5f): a Study run
// with the spill tier enabled must be byte-identical — windows, incidents,
// and all four record-consuming exhibits — to the resident-mode study, at
// 1/2/8 threads and across RAM budgets chosen to force zero, one, and many
// spill waves. The spill knob must be a pure memory/placement decision,
// never a semantic one.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/study.h"
#include "integration/study_exhibits.h"
#include "netflow/segment_store.h"

namespace dm {
namespace {

namespace fs = std::filesystem;

using test_support::Exhibits;
using test_support::exhibits_of;
using test_support::expect_same_study;

sim::ScenarioConfig base_config() {
  auto config = sim::ScenarioConfig::smoke();
  config.seed = 24601;
  return config;
}

/// Unique scratch directory per (suffix) under the system temp dir; removed
/// by the caller.
fs::path scratch_dir(const std::string& suffix) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("dm_spill_eq_" + std::to_string(::getpid()) + "_" + suffix);
  fs::remove_all(dir);
  return dir;
}

struct SpillCase {
  const char* label;
  std::uint64_t segment_bytes;
  std::uint64_t ram_budget_bytes;
};

// The smoke trace encodes to roughly 1–2 MiB; the policy seals at
// min(max(segment_bytes, 1 MiB), max(ram_budget / 2, 1 MiB)).
//   huge-budget  → threshold far above the trace → 0 segments sealed
//                  (finish() returns the resident store).
//   one-wave     → threshold ≈ the whole trace → a single late seal.
//   many-waves   → threshold floors at 1 MiB → several segments.
constexpr SpillCase kSpillCases[] = {
    {"zero-spills", 1ull << 30, 1ull << 32},
    {"one-wave", 64ull << 20, 16ull << 20},
    {"many-waves", 1ull << 20, 2ull << 20},
};

TEST(SpillEquivalence, StudyIsByteIdenticalAcrossBudgetsAndThreads) {
  auto resident_config = base_config();
  resident_config.thread_count = 1;
  const core::Study resident(resident_config);
  ASSERT_GT(resident.record_count(), 0u);
  ASSERT_FALSE(resident.detection().incidents.empty());
  ASSERT_FALSE(resident.trace().store().spilled());
  const Exhibits resident_exhibits = exhibits_of(resident);
  ASSERT_FALSE(resident_exhibits.remotes.empty());

  for (const SpillCase& c : kSpillCases) {
    for (unsigned threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(std::string(c.label) +
                   " threads=" + std::to_string(threads));
      const fs::path dir =
          scratch_dir(std::string(c.label) + "_t" + std::to_string(threads));
      auto config = base_config();
      config.thread_count = threads;
      config.spill.directory = dir.string();
      config.spill.segment_bytes = c.segment_bytes;
      config.spill.ram_budget_bytes = c.ram_budget_bytes;
      const core::Study spilled(config);

      // The case labels must describe what actually happened: the
      // zero-spill budget must come back resident, the others spilled.
      const netflow::RecordStore& store = spilled.trace().store();
      if (std::string(c.label) == "zero-spills") {
        EXPECT_FALSE(store.spilled());
      } else {
        EXPECT_TRUE(store.spilled());
        EXPECT_GE(store.segments().segment_count(), 1u);
        if (std::string(c.label) == "many-waves") {
          EXPECT_GE(store.segments().segment_count(), 2u);
        }
      }

      expect_same_study(resident, resident_exhibits, spilled);
      fs::remove_all(dir);
    }
  }
}

TEST(SpillEquivalence, UnfusedPipelineSpillsIdenticallyToo) {
  auto resident_config = base_config();
  resident_config.thread_count = 2;
  resident_config.fuse_pipeline = false;
  const core::Study resident(resident_config);
  const Exhibits resident_exhibits = exhibits_of(resident);

  const fs::path dir = scratch_dir("unfused");
  auto config = base_config();
  config.thread_count = 2;
  config.fuse_pipeline = false;
  config.spill.directory = dir.string();
  config.spill.segment_bytes = 1ull << 20;
  config.spill.ram_budget_bytes = 2ull << 20;
  const core::Study spilled(config);
  EXPECT_TRUE(spilled.trace().store().spilled());

  expect_same_study(resident, resident_exhibits, spilled);
  fs::remove_all(dir);
}

TEST(SpillEquivalence, SegmentDirectoryReopensToTheSameRecords) {
  // The segment files a study leaves behind are a complete, self-contained
  // copy of the trace: SegmentStore::open on the directory must decode the
  // identical record sequence.
  const fs::path dir = scratch_dir("reopen");
  auto config = base_config();
  config.thread_count = 1;
  config.spill.directory = dir.string();
  config.spill.segment_bytes = 1ull << 20;
  config.spill.ram_budget_bytes = 2ull << 20;
  const core::Study study(config);
  ASSERT_TRUE(study.trace().store().spilled());

  const netflow::RecordStore reopened(
      netflow::SegmentStore::open(dir.string()));
  ASSERT_EQ(reopened.size(), study.record_count());
  auto expect = study.trace().records();
  auto got = reopened.all();
  auto eit = expect.begin();
  auto git = got.begin();
  for (; eit != expect.end() && git != got.end(); ++eit, ++git) {
    ASSERT_EQ(*eit, *git) << "record " << eit.index();
    ASSERT_EQ(eit.direction(), git.direction()) << "direction " << eit.index();
  }
  EXPECT_TRUE(eit == expect.end());
  EXPECT_TRUE(git == got.end());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dm
