// The fused streaming path (sim::generate_windows) must produce a
// WindowedTrace BYTE-IDENTICAL to the unfused generate_trace →
// aggregate_windows pipeline — records, directions, windows, and the
// unclassified count — at every thread count, and Study must honor the
// fuse_pipeline knob transparently.
#include <gtest/gtest.h>

#include <tuple>

#include "core/study.h"
#include "netflow/window_aggregator.h"
#include "sim/trace_generator.h"

namespace dm {
namespace {

sim::ScenarioConfig base_config() {
  auto config = sim::ScenarioConfig::smoke();
  config.seed = 20150;
  return config;
}

auto window_tuple(const netflow::VipMinuteStats& w) {
  return std::make_tuple(
      w.vip.value(), w.minute, w.direction, w.packets, w.bytes, w.tcp_packets,
      w.udp_packets, w.icmp_packets, w.ipencap_packets, w.syn_packets,
      w.null_scan_packets, w.xmas_scan_packets, w.bare_rst_packets,
      w.dns_response_packets, w.flows, w.unique_remote_ips, w.smtp_flows,
      w.unique_smtp_remotes, w.remote_admin_flows, w.unique_admin_remotes,
      w.sql_flows, w.smtp_packets, w.admin_packets, w.sql_packets,
      w.blacklist_flows, w.unique_blacklist_remotes, w.blacklist_packets,
      w.first_record, w.last_record);
}

void expect_identical(const netflow::WindowedTrace& unfused,
                      const netflow::WindowedTrace& fused) {
  const auto base_records = unfused.records();
  const auto fused_records = fused.records();
  ASSERT_EQ(base_records.size(), fused_records.size());
  auto fused_it = fused_records.begin();
  for (auto it = base_records.begin(); it != base_records.end();
       ++it, ++fused_it) {
    ASSERT_EQ(*it, *fused_it) << "record " << it.index();
    ASSERT_EQ(it.direction(), fused_it.direction())
        << "direction " << it.index();
  }
  EXPECT_EQ(unfused.unclassified_records(), fused.unclassified_records());

  const auto base_windows = unfused.windows();
  const auto fused_windows = fused.windows();
  ASSERT_EQ(base_windows.size(), fused_windows.size());
  for (std::size_t i = 0; i < base_windows.size(); ++i) {
    ASSERT_EQ(window_tuple(base_windows[i]), window_tuple(fused_windows[i]))
        << "window " << i;
  }

  const auto base_vips = unfused.vips();
  const auto fused_vips = fused.vips();
  ASSERT_EQ(base_vips.size(), fused_vips.size());
  for (std::size_t i = 0; i < base_vips.size(); ++i) {
    EXPECT_EQ(base_vips[i], fused_vips[i]) << "vip " << i;
  }
}

TEST(FusedPipeline, MatchesUnfusedAtEveryThreadCount) {
  const sim::Scenario scenario(base_config());

  // Unfused reference, serial.
  exec::ThreadPool serial_pool(exec::workers_for(1));
  sim::TraceResult unfused = sim::generate_trace(scenario, &serial_pool);
  const std::uint64_t generated = unfused.records.size();
  ASSERT_GT(generated, 0u);
  const netflow::WindowedTrace reference = netflow::aggregate_windows(
      std::move(unfused.records), scenario.vips().cloud_space(),
      &scenario.tds().as_prefix_set(), &serial_pool);
  ASSERT_FALSE(reference.windows().empty());

  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("thread_count=" + std::to_string(threads));
    exec::ThreadPool pool(exec::workers_for(threads));
    const sim::FusedTrace fused = sim::generate_windows(scenario, &pool);
    EXPECT_EQ(fused.generated_records, generated);
    EXPECT_FALSE(fused.truth.episodes.empty());
    expect_identical(reference, fused.windowed);
  }
}

TEST(FusedPipeline, StudyKnobIsTransparent) {
  auto fused_config = base_config();
  fused_config.fuse_pipeline = true;
  fused_config.thread_count = 2;
  const core::Study fused(fused_config);

  auto unfused_config = base_config();
  unfused_config.fuse_pipeline = false;
  unfused_config.thread_count = 2;
  const core::Study unfused(unfused_config);

  EXPECT_EQ(fused.record_count(), unfused.record_count());
  expect_identical(unfused.trace(), fused.trace());

  ASSERT_EQ(fused.detection().incidents.size(),
            unfused.detection().incidents.size());
  ASSERT_EQ(fused.detection().minutes.size(),
            unfused.detection().minutes.size());
}

}  // namespace
}  // namespace dm
