// Properties the study inherits from NetFlow sampling (§3.2): volume
// estimates are unbiased under thinning, while flow/spread counts are lower
// bounds that shrink with coarser sampling.
#include <gtest/gtest.h>

#include "core/study.h"

namespace dm {
namespace {

sim::ScenarioConfig config_with_sampling(std::uint32_t sampling) {
  auto config = sim::ScenarioConfig::smoke();
  config.vips.vip_count = 120;
  config.days = 1;
  config.seed = 90210;
  config.sampling = sampling;
  return config;
}

class SamplingSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SamplingSweep, EstimatedVolumeIsSamplingInvariant) {
  // The *estimated* total packet volume (sampled x N) must agree across
  // sampling rates within statistical error, because the underlying true
  // traffic is the same scenario.
  const core::Study fine(config_with_sampling(256));
  const core::Study swept(config_with_sampling(GetParam()));

  const auto estimated = [](const core::Study& study) {
    double packets = 0.0;
    for (const auto& w : study.trace().windows()) {
      packets += static_cast<double>(w.packets);
    }
    return packets * study.sampling();
  };
  const double fine_estimate = estimated(fine);
  const double swept_estimate = estimated(swept);
  ASSERT_GT(fine_estimate, 0.0);
  EXPECT_NEAR(swept_estimate / fine_estimate, 1.0, 0.05)
      << "sampling 1:" << GetParam();
}

TEST_P(SamplingSweep, RecordCountsShrinkWithSampling) {
  const core::Study fine(config_with_sampling(256));
  const core::Study swept(config_with_sampling(GetParam()));
  EXPECT_LT(swept.record_count(), fine.record_count());
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplingSweep,
                         ::testing::Values(1024u, 4096u, 8192u));

TEST(SamplingInvariance, SpreadIsALowerBound) {
  // §3.2: "the number of flows we report should be viewed as a lower bound".
  const core::Study fine(config_with_sampling(512));
  const core::Study coarse(config_with_sampling(8192));
  std::uint64_t fine_flows = 0;
  std::uint64_t coarse_flows = 0;
  for (const auto& w : fine.trace().windows()) fine_flows += w.flows;
  for (const auto& w : coarse.trace().windows()) coarse_flows += w.flows;
  EXPECT_LT(coarse_flows, fine_flows / 4);
}

}  // namespace
}  // namespace dm
