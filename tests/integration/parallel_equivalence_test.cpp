// The serial-equivalence harness: a Study must produce BYTE-IDENTICAL
// results for any thread_count. Shards are seeded by entity index
// (Rng::split) and merged in shard order, so 1, 2, and 8 threads must agree
// on every record, window counter, minute detection, and incident.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/study.h"

namespace dm {
namespace {

sim::ScenarioConfig base_config() {
  auto config = sim::ScenarioConfig::smoke();
  config.seed = 2015;
  return config;
}

auto window_tuple(const netflow::VipMinuteStats& w) {
  return std::make_tuple(
      w.vip.value(), w.minute, w.direction, w.packets, w.bytes, w.tcp_packets,
      w.udp_packets, w.icmp_packets, w.ipencap_packets, w.syn_packets,
      w.null_scan_packets, w.xmas_scan_packets, w.bare_rst_packets,
      w.dns_response_packets, w.flows, w.unique_remote_ips, w.smtp_flows,
      w.unique_smtp_remotes, w.remote_admin_flows, w.unique_admin_remotes,
      w.sql_flows, w.smtp_packets, w.admin_packets, w.sql_packets,
      w.blacklist_flows, w.unique_blacklist_remotes, w.blacklist_packets,
      w.first_record, w.last_record);
}

auto minute_tuple(const detect::MinuteDetection& m) {
  return std::make_tuple(m.vip.value(), m.direction, m.type, m.minute,
                         m.sampled_packets, m.unique_remotes);
}

auto incident_tuple(const detect::AttackIncident& a) {
  return std::make_tuple(a.vip.value(), a.direction, a.type, a.start, a.end,
                         a.active_minutes, a.total_sampled_packets,
                         a.peak_sampled_ppm, a.peak_unique_remotes,
                         a.ramp_up_minutes);
}

void expect_identical(const core::Study& base, const core::Study& other,
                      unsigned threads) {
  SCOPED_TRACE("thread_count=" + std::to_string(threads));

  // Trace records: exact bytes, exact order.
  ASSERT_EQ(base.record_count(), other.record_count());
  const auto base_records = base.trace().records();
  const auto other_records = other.trace().records();
  ASSERT_EQ(base_records.size(), other_records.size());
  auto other_it = other_records.begin();
  for (auto it = base_records.begin(); it != base_records.end();
       ++it, ++other_it) {
    ASSERT_EQ(*it, *other_it) << "record " << it.index();
    ASSERT_EQ(it.direction(), other_it.direction())
        << "direction " << it.index();
  }
  EXPECT_EQ(base.trace().unclassified_records(),
            other.trace().unclassified_records());

  // Per-window counters.
  const auto base_windows = base.trace().windows();
  const auto other_windows = other.trace().windows();
  ASSERT_EQ(base_windows.size(), other_windows.size());
  for (std::size_t i = 0; i < base_windows.size(); ++i) {
    ASSERT_EQ(window_tuple(base_windows[i]), window_tuple(other_windows[i]))
        << "window " << i;
  }

  // Detection output: identical MinuteDetection and AttackIncident
  // sequences.
  const auto& base_minutes = base.detection().minutes;
  const auto& other_minutes = other.detection().minutes;
  ASSERT_EQ(base_minutes.size(), other_minutes.size());
  for (std::size_t i = 0; i < base_minutes.size(); ++i) {
    ASSERT_EQ(minute_tuple(base_minutes[i]), minute_tuple(other_minutes[i]))
        << "minute detection " << i;
  }
  const auto& base_incidents = base.detection().incidents;
  const auto& other_incidents = other.detection().incidents;
  ASSERT_EQ(base_incidents.size(), other_incidents.size());
  for (std::size_t i = 0; i < base_incidents.size(); ++i) {
    ASSERT_EQ(incident_tuple(base_incidents[i]),
              incident_tuple(other_incidents[i]))
        << "incident " << i;
  }
}

TEST(ParallelEquivalence, StudyIsByteIdenticalAcrossThreadCounts) {
  auto serial_config = base_config();
  serial_config.thread_count = 1;
  const core::Study serial(serial_config);

  // The smoke scenario must actually exercise the comparison.
  ASSERT_GT(serial.record_count(), 0u);
  ASSERT_FALSE(serial.detection().minutes.empty());
  ASSERT_FALSE(serial.detection().incidents.empty());

  for (unsigned threads : {2u, 8u}) {
    auto config = base_config();
    config.thread_count = threads;
    const core::Study parallel(config);
    expect_identical(serial, parallel, threads);
  }
}

TEST(ParallelEquivalence, DefaultThreadCountMatchesSerial) {
  // thread_count = 0 (hardware concurrency) must agree with serial too.
  auto serial_config = base_config();
  serial_config.thread_count = 1;
  const core::Study serial(serial_config);

  auto config = base_config();
  config.thread_count = 0;
  const core::Study parallel(config);
  expect_identical(serial, parallel, 0);
}

}  // namespace
}  // namespace dm
