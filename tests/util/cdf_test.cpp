#include "util/cdf.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dm::util {
namespace {

TEST(EmpiricalCdf, AtBoundaries) {
  EmpiricalCdf cdf;
  for (double x : {1.0, 2.0, 3.0, 4.0}) cdf.add(x);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, EmptyBehaviour) {
  const EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.render().empty());
  EXPECT_TRUE(cdf.render_log_x().empty());
}

TEST(EmpiricalCdf, QuantileAgainstStats) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 9; ++i) cdf.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 9.0);
}

TEST(EmpiricalCdf, RenderEndsAtOne) {
  Rng rng(5);
  EmpiricalCdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(rng.uniform(0.0, 50.0));
  const auto points = cdf.render(32);
  ASSERT_FALSE(points.empty());
  EXPECT_DOUBLE_EQ(points.back().fraction, 1.0);
  // Fractions are non-decreasing.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].fraction, points[i - 1].fraction);
    EXPECT_GE(points[i].x, points[i - 1].x);
  }
}

TEST(EmpiricalCdf, RenderLogXMonotone) {
  Rng rng(6);
  EmpiricalCdf cdf;
  for (int i = 0; i < 500; ++i) cdf.add(rng.lognormal_median(100.0, 1.5));
  const auto points = cdf.render_log_x(24);
  ASSERT_EQ(points.size(), 24u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].x, points[i - 1].x);
    EXPECT_GE(points[i].fraction, points[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(points.back().fraction, 1.0);
}

TEST(EmpiricalCdf, AddAllMatchesIncremental) {
  const double xs[] = {5.0, 1.0, 3.0};
  EmpiricalCdf a;
  a.add_all(xs);
  EmpiricalCdf b;
  for (double x : xs) b.add(x);
  EXPECT_DOUBLE_EQ(a.at(3.0), b.at(3.0));
  EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
}

TEST(EmpiricalCdf, ToTextFormat) {
  const std::vector<CdfPoint> points{{1.5, 0.5}, {2.0, 1.0}};
  EXPECT_EQ(to_text(points), "1.5 0.5\n2 1\n");
}

// Property: at(quantile(q)) >= q.
class CdfInverse : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfInverse, QuantileIsInverseOfAt) {
  Rng rng(GetParam());
  EmpiricalCdf cdf;
  for (int i = 0; i < 300; ++i) cdf.add(rng.uniform(0.0, 1000.0));
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_GE(cdf.at(cdf.quantile(q)), q - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfInverse, ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace dm::util
