#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace dm::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(7);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsPureAndDoesNotAdvanceParent) {
  Rng parent(7);
  Rng untouched(7);
  Rng a = parent.split(5);
  Rng b = parent.split(5);
  // Same stream index -> same child stream; parent state unchanged.
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(parent(), untouched());
}

TEST(Rng, SplitStreamsDecorrelate) {
  Rng parent(7);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  Rng c = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    const auto x = a();
    if (x == b() || x == c()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIndependentOfQueryOrder) {
  Rng parent(99);
  std::vector<std::uint64_t> forward;
  for (std::uint64_t s = 0; s < 8; ++s) forward.push_back(parent.split(s)());
  std::vector<std::uint64_t> backward(8);
  for (std::uint64_t s = 8; s-- > 0;) backward[s] = parent.split(s)();
  EXPECT_EQ(forward, backward);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(42);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(5);
  for (double mean : {0.1, 1.0, 7.5, 40.0, 200.0}) {
    double sum = 0.0;
    constexpr int kDraws = 20'000;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    const double sample_mean = sum / kDraws;
    EXPECT_NEAR(sample_mean, mean, std::max(0.05, mean * 0.05))
        << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BinomialMeanMatches) {
  Rng rng(6);
  struct Case {
    std::uint64_t n;
    double p;
  };
  for (const Case c : {Case{100, 0.1}, Case{4096, 1.0 / 4096.0},
                       Case{1'000'000, 0.001}, Case{50, 0.9}}) {
    double sum = 0.0;
    constexpr int kDraws = 20'000;
    for (int i = 0; i < kDraws; ++i) {
      const std::uint64_t draw = rng.binomial(c.n, c.p);
      ASSERT_LE(draw, c.n);
      sum += static_cast<double>(draw);
    }
    const double expect = static_cast<double>(c.n) * c.p;
    EXPECT_NEAR(sum / kDraws, expect, std::max(0.05, expect * 0.06));
  }
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(6);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(Rng, LognormalMedianMatches) {
  Rng rng(11);
  constexpr int kDraws = 40'000;
  std::vector<double> xs;
  xs.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) xs.push_back(rng.lognormal_median(100.0, 1.0));
  std::nth_element(xs.begin(), xs.begin() + kDraws / 2, xs.end());
  EXPECT_NEAR(xs[kDraws / 2], 100.0, 5.0);
}

TEST(Rng, ParetoBounds) {
  Rng rng(12);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.pareto(1.3, 1.0, 100.0);
    ASSERT_GE(x, 1.0 - 1e-9);
    ASSERT_LE(x, 100.0 + 1e-9);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(13);
  const double weights[] = {1.0, 0.0, 3.0};
  int counts[3] = {};
  constexpr int kDraws = 40'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, WeightedIndexAllZeroFallsBack) {
  Rng rng(14);
  const double weights[] = {0.0, 0.0};
  EXPECT_LT(rng.weighted_index(weights), 2u);
}

TEST(Rng, NormalMoments) {
  Rng rng(15);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(16);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace dm::util
