#include "util/ewma.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dm::util {
namespace {

TEST(Ewma, FirstObservationInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.primed());
  EXPECT_DOUBLE_EQ(e.update(10.0), 10.0);
  EXPECT_TRUE(e.primed());
  EXPECT_EQ(e.count(), 1u);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e = Ewma::for_window(10);
  for (int i = 0; i < 200; ++i) e.update(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(Ewma, TracksStepChange) {
  Ewma e = Ewma::for_window(10);
  for (int i = 0; i < 100; ++i) e.update(10.0);
  for (int i = 0; i < 100; ++i) e.update(50.0);
  EXPECT_NEAR(e.value(), 50.0, 0.1);
}

TEST(Ewma, AlphaOneIsLastValue) {
  Ewma e(1.0);
  e.update(5.0);
  e.update(99.0);
  EXPECT_DOUBLE_EQ(e.value(), 99.0);
}

TEST(Ewma, DecayMatchesRepeatedZeroUpdates) {
  Ewma a = Ewma::for_window(10);
  Ewma b = Ewma::for_window(10);
  a.update(100.0);
  b.update(100.0);
  for (int i = 0; i < 17; ++i) a.update(0.0);
  b.decay(17);
  EXPECT_NEAR(a.value(), b.value(), 1e-9);
  EXPECT_EQ(a.count(), b.count());
}

TEST(Ewma, DecayZeroStepsIsNoop) {
  Ewma e(0.3);
  e.update(7.0);
  e.decay(0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
  EXPECT_EQ(e.count(), 1u);
}

TEST(Ewma, DecayLargeStepCount) {
  Ewma e = Ewma::for_window(10);
  e.update(1e9);
  e.decay(10'000);
  EXPECT_NEAR(e.value(), 0.0, 1e-6);
}

TEST(Ewma, ResetClearsState) {
  Ewma e(0.2);
  e.update(10.0);
  e.reset();
  EXPECT_FALSE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(Ewma, ForWindowAlphaFormula) {
  // span convention: alpha = 2 / (N + 1); after one update from zero the
  // second update moves by alpha * delta.
  Ewma e = Ewma::for_window(9);  // alpha = 0.2
  e.update(0.0);
  e.update(10.0);
  EXPECT_NEAR(e.value(), 2.0, 1e-12);
}

// Property: EWMA value is always within [min, max] of observations.
class EwmaBounds : public ::testing::TestWithParam<int> {};

TEST_P(EwmaBounds, StaysWithinObservationRange) {
  Ewma e = Ewma::for_window(static_cast<std::size_t>(GetParam()));
  double lo = 1e300;
  double hi = -1e300;
  unsigned state = 12345;
  for (int i = 0; i < 500; ++i) {
    state = state * 1664525u + 1013904223u;
    const double x = static_cast<double>(state % 1000);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    e.update(x);
    EXPECT_GE(e.value(), lo - 1e-9);
    EXPECT_LE(e.value(), hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, EwmaBounds, ::testing::Values(1, 3, 10, 50));

}  // namespace
}  // namespace dm::util
