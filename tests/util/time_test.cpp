#include "util/time.h"

#include <gtest/gtest.h>

namespace dm::util {
namespace {

TEST(Time, DayOf) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(1439), 0);
  EXPECT_EQ(day_of(1440), 1);
  EXPECT_EQ(day_of(10 * 1440 + 5), 10);
}

TEST(Time, MinuteOfDayWraps) {
  EXPECT_EQ(minute_of_day(0), 0);
  EXPECT_EQ(minute_of_day(1439), 1439);
  EXPECT_EQ(minute_of_day(1440), 0);
  EXPECT_EQ(minute_of_day(1501), 61);
}

TEST(Time, HourOfDay) {
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(59), 0);
  EXPECT_EQ(hour_of_day(60), 1);
  EXPECT_EQ(hour_of_day(1440 + 13 * 60 + 30), 13);
}

TEST(Time, FormatMinute) {
  EXPECT_EQ(format_minute(0), "d0 00:00");
  EXPECT_EQ(format_minute(61), "d0 01:01");
  EXPECT_EQ(format_minute(1440 + 725), "d1 12:05");
}

}  // namespace
}  // namespace dm::util
