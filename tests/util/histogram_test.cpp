#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace dm::util {
namespace {

TEST(Histogram, BucketsCoverRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(2.5);
  h.add(9.99);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_EQ(buckets[4].count, 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClamps) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(100.0);
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].count, 1u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.5, 42);
  EXPECT_EQ(h.total(), 42u);
}

TEST(Histogram, RejectsInvertedRange) {
  EXPECT_THROW(Histogram(5.0, 5.0, 4), ConfigError);
  EXPECT_THROW(Histogram(6.0, 5.0, 4), ConfigError);
}

TEST(LogHistogram, GeometricEdges) {
  LogHistogram h(1.0, 1000.0, 3);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_NEAR(buckets[0].lo, 1.0, 1e-9);
  EXPECT_NEAR(buckets[0].hi, 10.0, 1e-6);
  EXPECT_NEAR(buckets[1].hi, 100.0, 1e-4);
  EXPECT_NEAR(buckets[2].hi, 1000.0, 1e-3);
}

TEST(LogHistogram, PlacesSamplesByMagnitude) {
  LogHistogram h(1.0, 1000.0, 3);
  h.add(2.0);
  h.add(50.0);
  h.add(500.0);
  h.add(999.0);
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_EQ(buckets[2].count, 2u);
}

TEST(LogHistogram, RequiresPositiveRange) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 4), ConfigError);
  EXPECT_THROW(LogHistogram(10.0, 1.0, 4), ConfigError);
}

TEST(RenderAscii, ProducesOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string text = render_ascii(h.buckets(), 10);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(RenderAscii, EmptyHistogramHasNoBars) {
  Histogram h(0.0, 4.0, 2);
  const std::string text = render_ascii(h.buckets());
  EXPECT_EQ(text.find('#'), std::string::npos);
}

}  // namespace
}  // namespace dm::util
