#include "util/anderson_darling.h"

#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "util/rng.h"

namespace dm::util {
namespace {

TEST(AndersonDarling, TooFewSamples) {
  const double one[] = {0.5};
  const auto result = anderson_darling_uniform(one);
  EXPECT_EQ(result.n, 1u);
  EXPECT_FALSE(result.uniform_at());
}

TEST(AndersonDarling, UniformSamplesPass) {
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform01());
  const auto result = anderson_darling_uniform(xs);
  EXPECT_TRUE(result.uniform_at(0.05)) << "A2=" << result.statistic
                                       << " p=" << result.p_value;
}

TEST(AndersonDarling, ClusteredSamplesFail) {
  Rng rng(43);
  std::vector<double> xs;
  // All mass in a narrow band — like real (unspoofed) botnet sources in a
  // couple of prefixes.
  for (int i = 0; i < 300; ++i) xs.push_back(rng.uniform(0.40, 0.45));
  const auto result = anderson_darling_uniform(xs);
  EXPECT_FALSE(result.uniform_at(0.05));
  EXPECT_GT(result.statistic, 10.0);
}

TEST(AndersonDarling, BimodalSamplesFail) {
  Rng rng(44);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(rng.chance(0.5) ? rng.uniform(0.0, 0.1) : rng.uniform(0.9, 1.0));
  }
  EXPECT_FALSE(anderson_darling_uniform(xs).uniform_at(0.05));
}

TEST(AndersonDarling, HandlesBoundaryValues) {
  const double xs[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  const auto result = anderson_darling_uniform(xs);
  EXPECT_TRUE(std::isfinite(result.statistic));
  EXPECT_TRUE(std::isfinite(result.p_value));
}

TEST(AndersonDarling, FalsePositiveRateNearAlpha) {
  // Test the test: at alpha = 0.05, ~5% of genuinely uniform samples should
  // be rejected. Allow a generous band.
  Rng rng(45);
  int rejections = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform01());
    if (!anderson_darling_uniform(xs).uniform_at(0.05)) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / kTrials;
  EXPECT_GT(rate, 0.005);
  EXPECT_LT(rate, 0.12);
}

// Property: power grows with sample size for a fixed non-uniform source.
class AdPower : public ::testing::TestWithParam<int> {};

TEST_P(AdPower, DetectsSkewedDistribution) {
  Rng rng(46);
  std::vector<double> xs;
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    xs.push_back(u * u);  // skewed toward 0
  }
  EXPECT_FALSE(anderson_darling_uniform(xs).uniform_at(0.05)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, AdPower,
                         ::testing::Values(50, 100, 500, 2000));

}  // namespace
}  // namespace dm::util
