#include "util/regression.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dm::util {
namespace {

TEST(Regression, PerfectLine) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  const double ys[] = {3.0, 5.0, 7.0, 9.0};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.at(10.0), 21.0, 1e-12);
}

TEST(Regression, EmptyInput) {
  const LinearFit fit = fit_linear({}, {});
  EXPECT_EQ(fit.n, 0u);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(Regression, ConstantYsHavePerfectFlatFit) {
  const double xs[] = {1.0, 2.0, 3.0};
  const double ys[] = {5.0, 5.0, 5.0};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(Regression, ZeroXVariance) {
  const double xs[] = {2.0, 2.0, 2.0};
  const double ys[] = {1.0, 2.0, 3.0};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 0.0);
}

TEST(Regression, NoisyLineHighR2) {
  Rng rng(3);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(3.0 * x + 7.0 + rng.normal(0.0, 2.0));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Regression, UncorrelatedDataLowR2) {
  Rng rng(4);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.uniform01());
    ys.push_back(rng.uniform01());
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_LT(fit.r_squared, 0.05);
}

TEST(Regression, MismatchedLengthsUseShorter) {
  const double xs[] = {1.0, 2.0, 3.0, 100.0};
  const double ys[] = {2.0, 4.0, 6.0};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_EQ(fit.n, 3u);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

// Property: R^2 is scale- and shift-invariant in x.
class RegressionInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegressionInvariance, R2InvariantUnderAffineX) {
  Rng rng(GetParam());
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> xs2;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    xs2.push_back(4.0 * x - 17.0);
    ys.push_back(2.0 * x + rng.normal(0.0, 1.0));
  }
  const LinearFit a = fit_linear(xs, ys);
  const LinearFit b = fit_linear(xs2, ys);
  EXPECT_NEAR(a.r_squared, b.r_squared, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegressionInvariance,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace dm::util
