#include "util/table.h"

#include <gtest/gtest.h>

namespace dm::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t;
  t.set_header({"name", "count"});
  t.row("alpha", 10);
  t.row("b", 2);
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, EmptyTableRendersNothing) {
  const TextTable t;
  EXPECT_TRUE(t.render().empty());
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextTable, MixedCellTypes) {
  TextTable t;
  t.row("x", 1, 2.5, std::string("y"));
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.render().find("2.5"), std::string::npos);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(3.14159, 3), "3.142");
}

TEST(FormatPps, Units) {
  EXPECT_EQ(format_pps(500.0), "500 pps");
  EXPECT_EQ(format_pps(9'500.0), "9.5 Kpps");
  EXPECT_EQ(format_pps(9'400'000.0), "9.4 Mpps");
}

TEST(FormatMinutes, Units) {
  EXPECT_EQ(format_minutes(5.0), "5 min");
  EXPECT_EQ(format_minutes(90.0), "1.5 hour");
  EXPECT_EQ(format_minutes(2880.0), "2 day");
  EXPECT_EQ(format_minutes(20160.0), "2 week");
  EXPECT_EQ(format_minutes(86400.0), "2 month");
}

TEST(FormatPercent, Basics) {
  EXPECT_EQ(format_percent(0.351), "35.1%");
  EXPECT_EQ(format_percent(1.0), "100%");
  EXPECT_EQ(format_percent(0.0021, 2), "0.21%");
}

}  // namespace
}  // namespace dm::util
