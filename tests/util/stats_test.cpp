#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace dm::util {
namespace {

TEST(Stats, MeanBasics) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
  const double single[] = {3.0};
  EXPECT_DOUBLE_EQ(stddev(single), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const double xs[] = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 20.0);
}

TEST(Stats, QuantileUnsortedInput) {
  const double xs[] = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(Stats, QuantileClampsQ) {
  const double xs[] = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

TEST(Stats, QuantileEmpty) {
  EXPECT_DOUBLE_EQ(quantile(std::span<const double>{}, 0.5), 0.0);
}

TEST(Stats, MedianSingleElement) {
  const double xs[] = {7.0};
  EXPECT_DOUBLE_EQ(median(xs), 7.0);
}

TEST(Stats, SummaryCoversAllFields) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.p50, 50.5);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

// Property: quantile is monotone in q.
class QuantileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotone, MonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.lognormal_median(10.0, 2.0));
  std::sort(xs.begin(), xs.end());
  double prev = quantile_sorted(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile_sorted(xs, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dm::util
